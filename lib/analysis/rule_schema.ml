(* R9: every "ptrng-<name>/<version>" wire-format tag in the code must
   match the central registry (Ptrng_telemetry.Schema).  Emitters are
   expected to build tags via [Schema.id]; any literal that still looks
   like a tag is checked against the registry, so an unregistered
   document type or a version-skewed emitter/parser cannot drift
   silently past review.  Registered, current-version literals are
   allowed — parsers legitimately match on them. *)

module Schema = Ptrng_telemetry.Schema

let check ~rule (loader : Loader.t) =
  let findings = ref [] in
  List.iter
    (fun (unit : Loader.unit_info) ->
      match unit.impl with
      | None -> ()
      | Some str ->
        Tast_util.iter_structure_expressions str (fun ~symbol e ->
            match e.exp_desc with
            | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
              List.iter
                (fun (name, version) ->
                  let tag = Schema.tag name version in
                  match Schema.find name with
                  | None ->
                    findings :=
                      Rule.make_finding ~rule ~unit ~loc:e.exp_loc ~symbol
                        ~detail:("unregistered:" ^ tag)
                        (Printf.sprintf
                           "schema tag %S is not in the central registry; \
                            add an entry to Ptrng_telemetry.Schema.all and \
                            emit it via Schema.id"
                           tag)
                      :: !findings
                  | Some entry when entry.Schema.version <> version ->
                    findings :=
                      Rule.make_finding ~rule ~unit ~loc:e.exp_loc ~symbol
                        ~detail:
                          (Printf.sprintf "skew:%s@%d!=%d" name version
                             entry.Schema.version)
                        (Printf.sprintf
                           "schema tag %S disagrees with the registry \
                            (current version %d); update the emitter or \
                            bump the registry entry"
                           tag entry.Schema.version)
                      :: !findings
                  | Some _ -> ())
                (Schema.scan s)
            | _ -> ()))
    loader.units;
  List.rev !findings

let rec rule =
  {
    Rule.id = "R9";
    name = "schema-registry";
    severity = Finding.Error;
    doc =
      "every ptrng-<name>/<version> wire-format literal must match the \
       central registry (Ptrng_telemetry.Schema); unregistered names and \
       version skews are errors";
    check = (fun loader -> check ~rule loader);
  }
