(* Lint diagnostics.  The fingerprint deliberately omits line/column:
   baselined findings must survive edits elsewhere in the file. *)

module Json = Ptrng_telemetry.Json

type severity = Error | Warning | Info

let severity_name (s : severity) =
  match s with
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name s : severity option =
  match s with
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type t = {
  rule : string;
  rule_name : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  symbol : string;
  detail : string;
  message : string;
}

let fingerprint t =
  String.concat ":" [ t.rule; t.file; t.symbol; t.detail ]

let compare a b =
  match Stdlib.compare a.file b.file with
  | 0 -> (
    match Stdlib.compare (a.line, a.col) (b.line, b.col) with
    | 0 -> Stdlib.compare a.rule b.rule
    | c -> c)
  | c -> c

let to_json t =
  Json.Obj
    [
      ("rule", Json.String t.rule);
      ("rule_name", Json.String t.rule_name);
      ("severity", Json.String (severity_name t.severity));
      ("file", Json.String t.file);
      ("line", Json.Int t.line);
      ("col", Json.Int t.col);
      ("symbol", Json.String t.symbol);
      ("detail", Json.String t.detail);
      ("message", Json.String t.message);
      ("fingerprint", Json.String (fingerprint t));
    ]

let str j key =
  match Json.member key j with Some (Json.String s) -> Some s | _ -> None

let int_field j key =
  match Json.member key j with Some (Json.Int i) -> Some i | _ -> None

let of_json j =
  match
    ( str j "rule",
      str j "rule_name",
      Option.bind (str j "severity") severity_of_name,
      str j "file" )
  with
  | Some rule, Some rule_name, Some severity, Some file ->
    Ok
      {
        rule;
        rule_name;
        severity;
        file;
        line = Option.value ~default:0 (int_field j "line");
        col = Option.value ~default:0 (int_field j "col");
        symbol = Option.value ~default:"" (str j "symbol");
        detail = Option.value ~default:"" (str j "detail");
        message = Option.value ~default:"" (str j "message");
      }
  | _ -> Error "finding: missing rule/rule_name/severity/file"

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s/%s] %s" t.file t.line t.col t.rule
    (severity_name t.severity) t.message;
  if t.symbol <> "" then Format.fprintf ppf " (in %s)" t.symbol
