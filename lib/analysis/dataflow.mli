(** Generic bottom-up dataflow over the call graph's SCC condensation.

    Instantiate with a join-semilattice of per-function facts; the
    solver computes, for every node, the join of its own [direct] fact
    with the (transferred) facts of everything it calls, iterating
    mutual-recursion SCCs to a local fixpoint.  Termination needs a
    finite-height lattice — all domains in this repo are small
    powersets or booleans. *)

module type DOMAIN = sig
  type fact

  val bottom : fact
  (** Identity of [join]; also the fact assumed for unknown callees. *)

  val join : fact -> fact -> fact
  val equal : fact -> fact -> bool
end

module Make (D : DOMAIN) : sig
  type summary = (string, D.fact) Hashtbl.t

  val get : summary -> string -> D.fact
  (** Solved fact for a node name; [D.bottom] when absent. *)

  val solve :
    Callgraph.t ->
    direct:(Callgraph.node -> D.fact) ->
    ?transfer:
      (caller:Callgraph.node -> callee:Callgraph.node -> D.fact -> D.fact) ->
    unit ->
    summary
  (** [solve g ~direct ()] runs the fixpoint.  [transfer] (default:
      identity) rewrites a callee's fact as it flows into a caller — a
      rule cuts propagation along an edge by returning [D.bottom]. *)
end
