(* R2: numeric safety in the fit/model layers.  Works on the typed
   tree, so only genuinely float-typed operands of the polymorphic
   comparisons are flagged — `n = 0` on ints passes. *)

let scope = [ "lib/measure"; "lib/model" ]

let comparison_ops = [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare" ]

let float_of_int_names = [ "Stdlib.float_of_int"; "Stdlib.Float.of_int" ]

let short_op name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

(* `x /. float_of_int n` with n a bare ident: the possibly-zero local. *)
let div_by_local (args : (Asttypes.arg_label * Typedtree.expression option) list)
    =
  match List.filter_map snd args with
  | [ _; divisor ] -> (
    match divisor.exp_desc with
    | Typedtree.Texp_apply (f, inner) -> (
      match (Tast_util.ident_name f, List.filter_map snd inner) with
      | Some conv, [ arg ] when List.mem conv float_of_int_names ->
        Tast_util.ident_name arg
      | _ -> None)
    | _ -> None)
  | _ -> None

let check_item ~rule ~(unit : Loader.unit_info) ~literal_idents item =
  let guarded = Tast_util.guarded_idents item in
  let symbol =
    match item.Typedtree.str_desc with
    | Typedtree.Tstr_value (_, vb :: _) -> (
      match Tast_util.pattern_names vb.vb_pat with n :: _ -> n | [] -> "")
    | _ -> ""
  in
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
           | Typedtree.Texp_apply (f, args) -> (
             match Tast_util.ident_name f with
             | Some op when List.mem op comparison_ops ->
               let floaty =
                 List.exists
                   (function
                     | _, Some (a : Typedtree.expression) ->
                       Tast_util.is_float_type a.exp_type
                     | _ -> false)
                   args
               in
               if floaty then
                 acc :=
                   Rule.make_finding ~rule ~unit ~loc:e.exp_loc ~symbol
                     ~detail:("float-" ^ short_op op)
                     (Printf.sprintf
                        "exact float comparison (%s); use \
                         Ptrng_stats.Float_cmp.approx_eq/near_zero or an \
                         explicit ordering"
                        (short_op op))
                   :: !acc
             | Some "Stdlib./." -> (
               match div_by_local args with
               | Some local
                 when (not (List.mem local literal_idents))
                      && not (List.mem local guarded) ->
                 acc :=
                   Rule.make_finding ~rule ~unit ~loc:e.exp_loc ~symbol
                     ~detail:("div-by-" ^ local)
                     (Printf.sprintf
                        "division by float_of_int %s with no guard on %s in \
                         this definition — zero gives inf/nan"
                        local local)
                   :: !acc
               | _ -> ())
             | _ -> ())
           | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.structure_item it item;
  !acc

let check_unit ~rule (unit : Loader.unit_info) =
  match unit.impl with
  | None -> []
  | Some str ->
    let literal_idents = Tast_util.int_literal_bound_idents str in
    List.concat_map
      (check_item ~rule ~unit ~literal_idents)
      str.Typedtree.str_items

let rec rule =
  {
    Rule.id = "R2";
    name = "float-safety";
    severity = Finding.Warning;
    doc =
      "flag exact float =/<>/compare and unguarded x /. float_of_int n in \
       lib/measure and lib/model";
    check =
      (fun loader ->
        List.concat_map
          (fun unit ->
            if loader.Loader.scope_all || Loader.in_dirs ~dirs:scope unit then
              check_unit ~rule unit
            else [])
          loader.Loader.units);
  }
