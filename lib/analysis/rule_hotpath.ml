(* R7: static proof of the zero-allocation streaming hot path.

   The bench gate measures words/sample empirically; this rule proves
   the same property at compile time.  It builds the whole-repo call
   graph, walks everything reachable from a manifest of hot entry
   points, and infers each reached function's *direct* allocation
   effects under the classic (non-flambda) ocamlopt model:

     - closure   : a lambda capturing locals of the enclosing function
                   (a capture-free lambda is a static closure — free);
     - heap      : tuple/record/array/constructor-with-payload/variant
                   payload/lazy construction, plus the stores where
                   boxing survives local unboxing — a float into a
                   non-flat record field, a boxed number into a
                   mutable field or boxed-element array;
     - boxed-ret : a non-[@inline] function returning float/int64/
                   int32/nativeint — the result is boxed at every call
                   boundary the inliner does not erase;
     - poly      : polymorphic compare/hash at a non-immediate type
                   (and min/max at float, whose result is re-boxed);
     - partial   : an application whose result is still an arrow —
                   a fresh closure per execution;
     - extern    : a call to a function outside the graph that is not
                   on the known-allocation-free list.

   Two classic-mode facts keep the model honest rather than merely
   conservative: boxed-number arithmetic chains (Int64 and friends)
   are unboxed by cmmgen inside one function body, so the operators
   themselves are safe and only the escape points above allocate; and
   a [let r = ref e] used only through [!]/[:=]/[incr]/[decr] at its
   own lambda depth is erased by [Simplif.eliminate_ref] into an
   unboxed mutable local, so such cells are not flagged
   ({!Tast_util.eliminable_refs}).

   Any reached function with a non-empty effect set is a finding, with
   the call path from the manifest entry in the message (the
   fingerprint stays line-free, so the baseline machinery works
   unchanged).  Error paths are excluded: [assert] bodies and the
   arguments of raise/failwith/invalid_arg never run on the steady
   path.  Traversal stops at registered *amortized cuts* — functions
   like a window close that run once per N samples by design; each cut
   emits an [Info] finding so the exemption is visible and baselined
   with a note, never silent. *)

type manifest = {
  entries : string list;
  cuts : (string * string) list;  (* node name, why the cut is sound *)
}

(* The hot-entry manifest.  [Pair.stream] from the ISSUE list is
   deliberately absent: it is the creation-time constructor of the
   stream pair (allocates its state records once, by design); the
   steady-state entry is [Pair.fill].  [Source.create] likewise. *)
let default_manifest =
  {
    entries =
      [
        "Ptrng_noise.Source.fill";
        "Ptrng_osc.Pair.fill";
        "Ptrng_prng.Gaussian.fill_fa";
        "Ptrng_monitor.Rn_estimator.feed_many";
        "Ptrng_monitor.Monitor.feed_jitter_chunk";
        "Ptrng_monitor.Monitor.feed_bit";
        "Ptrng_monitor.Flight_recorder.record_jitter";
        "Ptrng_monitor.Flight_recorder.record_jitter_chunk";
        "Ptrng_monitor.Flight_recorder.record_bit";
        "Ptrng_monitor.Flight_recorder.record_window";
        "Ptrng_monitor.Flight_recorder.record_transition";
        "Ptrng_monitor.Flight_recorder.tick_window";
      ];
    cuts =
      [
        ( "Ptrng_monitor.Monitor.refresh_fit",
          "runs once per fit_stride samples (default thousands): refits \
           the r_N regression, updates gauges/series and emits one event" );
        ( "Ptrng_monitor.Monitor.close_window",
          "runs once per window (8192 bits), not per sample; builds the \
           chart point and health snapshot" );
        ( "Ptrng_monitor.Flight_recorder.freeze",
          "runs once per incident; serializes the rings into a bundle" );
        ( "Ptrng_monitor.Flight_recorder.note_trigger",
          "runs once per incident trigger, records the reason string" );
        ( "Ptrng_prng.Gaussian.draw",
          "the boxed scalar sampler: fill_fa's fallback for non-xoshiro \
           backends and the per-sample API; the default backend takes \
           the unboxed fill_fa_xoshiro path, which is what the proof \
           covers" );
        ( "Ptrng_prng.Rng.child",
          "constructs one child generator per chunk boundary (a few \
           records); amortized over the chunk's samples by design" );
        ( "Ptrng_prng.Gaussian.create",
          "constructs the per-chunk sampler state next to Rng.child; \
           same chunk-boundary amortization" );
        ( "Ptrng_noise.Spectral_synth.generate_with_root",
          "per-block spectral synthesis: scratch spectrum arrays, FFT \
           and child-stream setup run once per block (thousands of \
           samples), bounded by the bench words/sample gate" );
      ];
  }

(* ---------------------------------------------------------------- *)
(* Extern classification                                             *)
(* ---------------------------------------------------------------- *)

(* Calls known not to allocate per call in classic ocamlopt: compiler
   primitives, unboxed-external math, in-place array/bytes access,
   atomics and locks.  Matched by dotted suffix against the normalized
   resolved path. *)
let safe_externs =
  [
    (* int/float arithmetic and logic: all compiler primitives *)
    "Stdlib.+"; "Stdlib.-"; "Stdlib.*"; "Stdlib./"; "Stdlib.mod";
    "Stdlib.abs"; "Stdlib.succ"; "Stdlib.pred";
    "Stdlib.+."; "Stdlib.-."; "Stdlib.*."; "Stdlib./."; "Stdlib.~-.";
    "Stdlib.~-"; "Stdlib.~+"; "Stdlib.land"; "Stdlib.lor"; "Stdlib.lxor";
    "Stdlib.lnot"; "Stdlib.lsl"; "Stdlib.lsr"; "Stdlib.asr";
    "Stdlib.&&"; "Stdlib.||"; "Stdlib.not"; "Stdlib.=="; "Stdlib.!=";
    (* unboxed/noalloc external math *)
    "Stdlib.sqrt"; "Stdlib.exp"; "Stdlib.log"; "Stdlib.log10";
    "Stdlib.log1p"; "Stdlib.sin"; "Stdlib.cos"; "Stdlib.tan";
    "Stdlib.atan"; "Stdlib.atan2"; "Stdlib.floor"; "Stdlib.ceil";
    "Stdlib.mod_float"; "Stdlib.float_of_int"; "Stdlib.int_of_float";
    "Stdlib.truncate";
    "Float.of_int"; "Float.to_int"; "Float.abs"; "Float.is_nan";
    "Float.is_finite"; "Float.floor"; "Float.ceil"; "Float.trunc";
    (* ref cell access (creation is Stdlib.ref, which allocates) *)
    "Stdlib.!"; "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr";
    "Stdlib.ignore"; "Stdlib.fst"; "Stdlib.snd";
    (* in-place array / bytes / string access *)
    "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
    "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Float.Array.length"; "Float.Array.get"; "Float.Array.set";
    "Float.Array.unsafe_get"; "Float.Array.unsafe_set";
    "Float.Array.fill"; "Float.Array.blit";
    "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
    "Bytes.unsafe_set"; "Bytes.get_uint8"; "Bytes.set_uint8";
    "Bytes.blit"; "Bytes.unsafe_blit"; "Bytes.fill";
    "String.length"; "String.get"; "String.unsafe_get";
    "Char.code"; "Char.chr"; "Char.unsafe_chr";
    (* conversions that stay immediate *)
    "Int64.to_int"; "Int32.to_int"; "Nativeint.to_int";
    (* Boxed-number arithmetic: classic cmmgen unboxes int64/int32/
       nativeint/float locals whose producers and consumers are both
       numeric primitives, so chains of these inside one function body
       never touch the heap.  The places where boxing survives are
       modelled separately: results crossing a non-inlined call
       boundary (the boxed-return check), stores into record fields
       (the setfield check) and stores into boxed-element arrays. *)
    "Int64.add"; "Int64.sub"; "Int64.mul"; "Int64.div"; "Int64.rem";
    "Int64.neg"; "Int64.logand"; "Int64.logor"; "Int64.logxor";
    "Int64.lognot"; "Int64.shift_left"; "Int64.shift_right";
    "Int64.shift_right_logical"; "Int64.of_int"; "Int64.of_int32";
    "Int64.to_int32"; "Int64.of_nativeint"; "Int64.to_nativeint";
    "Int64.of_float"; "Int64.to_float"; "Int64.bits_of_float";
    "Int64.float_of_bits";
    "Int32.add"; "Int32.sub"; "Int32.mul"; "Int32.logand"; "Int32.logor";
    "Int32.logxor"; "Int32.shift_left"; "Int32.shift_right";
    "Int32.shift_right_logical"; "Int32.of_int";
    "Nativeint.add"; "Nativeint.sub"; "Nativeint.mul"; "Nativeint.logand";
    "Nativeint.logor"; "Nativeint.logxor"; "Nativeint.shift_left";
    "Nativeint.shift_right"; "Nativeint.shift_right_logical";
    "Nativeint.of_int";
    (* allocation-free traversals and predicates *)
    "List.length"; "List.exists"; "List.iter"; "List.iteri";
    "List.mem"; "List.mem_assoc"; "String.iter";
    "Option.is_some"; "Option.is_none";
    (* concurrency primitives *)
    "Atomic.get"; "Atomic.set"; "Atomic.incr"; "Atomic.decr";
    "Atomic.fetch_and_add"; "Atomic.compare_and_set"; "Atomic.exchange";
    "Mutex.lock"; "Mutex.unlock"; "Mutex.try_lock"; "Mutex.protect";
    "Condition.signal"; "Condition.broadcast"; "Condition.wait";
    "Domain.cpu_relax"; "Domain.self"; "Domain.DLS.get";
    "Domain.recommended_domain_count";
  ]

(* Known allocators, with the reason (better message than "unknown"). *)
let alloc_externs =
  [
    ("Stdlib.ref", "allocates the heap cell");
    ("Stdlib.^", "allocates the concatenated string");
    ("Stdlib.@", "copies the left list");
    ("Array.make", "allocates the array");
    ("Array.init", "allocates the array");
    ("Array.copy", "allocates the copy");
    ("Array.sub", "allocates the slice");
    ("Array.append", "allocates the result");
    ("Array.map", "allocates a same-length result");
    ("Array.mapi", "allocates a same-length result");
    ("Array.to_list", "allocates one cons cell per element");
    ("Array.of_list", "allocates the array");
    ("Float.Array.create", "allocates the array");
    ("Float.Array.make", "allocates the array");
    ("List.map", "allocates one cons cell per element");
    ("List.mapi", "allocates one cons cell per element");
    ("List.init", "allocates the list");
    ("List.filter", "allocates the kept spine");
    ("List.rev", "allocates the reversed spine");
    ("List.append", "copies the left list");
    ("List.concat_map", "allocates intermediate lists");
    ("Bytes.create", "allocates the buffer");
    ("Bytes.make", "allocates the buffer");
    ("Bytes.sub", "allocates the slice");
    ("Bytes.to_string", "copies into a fresh string");
    ("Bytes.of_string", "copies into a fresh buffer");
    ("String.sub", "allocates the slice");
    ("String.make", "allocates the string");
    ("String.concat", "allocates the result");
    ("Buffer.create", "allocates the buffer");
    ("Buffer.add_string", "may grow the buffer");
    ("Buffer.add_char", "may grow the buffer");
    ("Buffer.contents", "copies into a fresh string");
    ("Printf.sprintf", "allocates the formatted string");
    ("Printf.printf", "allocates format intermediates");
    ("Printf.eprintf", "allocates format intermediates");
    ("Float.max", "re-boxes the float result; use an if/else");
    ("Float.min", "re-boxes the float result; use an if/else");
    ("Float.is_integer", "calls through non-inlined float helpers");
    ("Hashtbl.add", "allocates a bucket");
    ("Hashtbl.replace", "may allocate a bucket");
    ("Array.fold_left", "boxes a non-immediate accumulator each step");
    ("List.filteri", "allocates the kept spine");
    ("List.rev_append", "copies the left list");
    ("Stdlib.string_of_int", "allocates the string");
    ("Stdlib.string_of_float", "allocates the string");
    ("Stdlib.int_of_string_opt", "allocates the option");
    ("Stdlib.float_of_string", "boxes the parsed float");
    ("String.trim", "may copy the string");
    ("Sys.getenv_opt", "allocates the option");
    ("Unix.gettimeofday", "boxes the float result");
  ]

(* Error-path heads: the whole application subtree is cold (runs at
   most once, on the way out) and excluded from the steady-state
   proof. *)
let cold_heads =
  [
    "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg"; "Stdlib.exit";
    "Printexc.raise_with_backtrace";
  ]

let poly_compare_heads =
  [
    "Stdlib.compare"; "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>="; "Hashtbl.hash";
  ]

let minmax_heads = [ "Stdlib.min"; "Stdlib.max" ]

let suffix_mem name table =
  List.exists (fun suffix -> Tast_util.has_suffix ~suffix name) table

let suffix_assoc name table =
  List.find_opt (fun (suffix, _) -> Tast_util.has_suffix ~suffix name) table

let is_immediate_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
    Path.same p Predef.path_int || Path.same p Predef.path_bool
    || Path.same p Predef.path_char || Path.same p Predef.path_unit
  | _ -> false

(* Types at which translcore specializes comparison operators to
   dedicated primitives (no polymorphic walk, no allocation): the
   immediates above plus float, the boxed integers and string. *)
let is_specialized_compare_type ty =
  is_immediate_type ty
  ||
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
    Path.same p Predef.path_float || Path.same p Predef.path_int64
    || Path.same p Predef.path_int32
    || Path.same p Predef.path_nativeint
    || Path.same p Predef.path_string
  | _ -> false

let boxed_numeric_name ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
    if Path.same p Predef.path_float then Some "float"
    else if Path.same p Predef.path_int64 then Some "int64"
    else if Path.same p Predef.path_int32 then Some "int32"
    else if Path.same p Predef.path_nativeint then Some "nativeint"
    else None
  | _ -> None

let rec final_result_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, r, _) -> final_result_type r
  | Types.Tpoly (t, _) -> final_result_type t
  | _ -> ty

(* ---------------------------------------------------------------- *)
(* Direct effects of one function body                               *)
(* ---------------------------------------------------------------- *)

type effect_ = { tag : string; why : string; eloc : Location.t }

let direct_effects (g : Callgraph.t) (node : Callgraph.node) =
  let effects = ref [] in
  let add tag why eloc = effects := { tag; why; eloc } :: !effects in
  (match node.kind with
   | Callgraph.Value -> ()
   | Callgraph.Func ->
     (match boxed_numeric_name (final_result_type node.expr.exp_type) with
      | Some box when not node.inline ->
        add ("boxed-return:" ^ box)
          (Printf.sprintf
             "returns a boxed %s across every non-inlined call boundary; \
              add [@inline] or write into a caller-owned buffer"
             box)
          node.loc
      | _ -> ());
     let enclosing_bound = Tast_util.expr_bound_idents node.expr in
     let elim = Tast_util.eliminable_refs node.expr in
     let it = ref Tast_iterator.default_iterator in
     let visit sub (e : Typedtree.expression) =
       match e.exp_desc with
       | Typedtree.Texp_assert _ -> () (* cold: dev-build error path *)
       | Typedtree.Texp_function _ when e == node.body ->
         (* A multi-case [function] in final parameter position: the
            peel stops there, but translcore merges the lambda into
            the enclosing arity — it is a parameter, not a closure. *)
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_function _ ->
         (match Tast_util.lambda_captures ~enclosing_bound e with
          | [] -> ()
          | caps ->
            let names = List.map (fun (n, _, _) -> n) caps in
            add ("closure:" ^ String.concat "," names)
              (Printf.sprintf
                 "lambda captures local%s %s — a heap closure per execution"
                 (if List.length names > 1 then "s" else "")
                 (String.concat ", " names))
              e.exp_loc);
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_tuple _ -> add "heap:tuple" "allocates a tuple" e.exp_loc;
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_record _ ->
         add "heap:record" "allocates a record" e.exp_loc;
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_array (_ :: _) ->
         add "heap:array" "allocates an array literal" e.exp_loc;
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_construct (_, cd, _ :: _) ->
         add ("heap:" ^ cd.cstr_name)
           (Printf.sprintf "allocates a %s block" cd.cstr_name)
           e.exp_loc;
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_variant (_, Some _) ->
         add "heap:variant" "allocates a variant payload" e.exp_loc;
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_lazy _ ->
         add "heap:lazy" "allocates a lazy thunk" e.exp_loc;
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_setfield (_, _, lbl, v) ->
         (* Where boxing actually survives cmmgen's local unboxing:
            storing a float into a non-flat record, or any boxed
            number into a (pointer-holding) mutable field, re-boxes
            the value at every store. *)
         (match boxed_numeric_name v.Typedtree.exp_type with
          | Some "float" when lbl.Types.lbl_repres = Types.Record_float -> ()
          | Some box ->
            add ("heap:setfield:" ^ box)
              (Printf.sprintf
                 "storing a %s into mutable field %s boxes the value at \
                  every store"
                 box lbl.Types.lbl_name)
              e.exp_loc
          | None -> ());
         Tast_iterator.default_iterator.expr sub e
       | Typedtree.Texp_apply (f, args) -> (
         let resolution = Callgraph.resolve_head g node f in
         let canonical =
           match resolution with
           | Some (Callgraph.Internal n) | Some (Callgraph.External n) ->
             Some n
           | Some Callgraph.Local | None -> None
         in
         match canonical with
         | Some name when suffix_mem name cold_heads -> () (* cold subtree *)
         | _ ->
           (if
              match Types.get_desc e.exp_type with
              | Types.Tarrow _ -> true
              | _ -> false
            then
              add "partial-app"
                "partial application allocates a closure per execution"
                e.exp_loc);
           (match resolution with
            (* Local: a function-local binding — its body is scanned
               inline as part of this node.  None: a computed head —
               whatever builds it is flagged in its own subtree. *)
            | Some Callgraph.Local | None -> ()
            (* Internal: the callee is its own node; its effects are
               its own findings when it is reached. *)
            | Some (Callgraph.Internal _) -> ()
            | Some (Callgraph.External name) ->
              let arg_ty =
                match args with
                | (_, Some a) :: _ -> Some a.Typedtree.exp_type
                | _ -> None
              in
              if
                Tast_util.has_suffix ~suffix:"Stdlib.ref" name
                && List.memq e elim
              then
                (* Simplif.eliminate_ref erases this cell: every use is
                   !/:=/incr/decr at the binding's lambda depth. *)
                ()
              else if
                suffix_mem name [ "Array.set"; "Array.unsafe_set" ]
              then (
                (* Flat for float arrays; for boxed-number elements the
                   stored value is re-boxed on every write. *)
                match List.rev (List.filter_map snd args) with
                | v :: _ -> (
                  match boxed_numeric_name v.Typedtree.exp_type with
                  | Some (("int64" | "int32" | "nativeint") as box) ->
                    add ("heap:array-store:" ^ box)
                      (Printf.sprintf
                         "storing a %s into a boxed-element array boxes \
                          the value at every write"
                         box)
                      e.exp_loc
                  | _ -> ())
                | [] -> ())
              else if suffix_mem name poly_compare_heads then (
                (* translcore specializes comparisons at statically
                   known immediate, float, boxed-integer and string
                   types to primitives; only genuinely polymorphic
                   uses walk the value. *)
                match arg_ty with
                | Some ty when is_specialized_compare_type ty -> ()
                | _ ->
                  add ("poly:" ^ Filename.basename name)
                    (Printf.sprintf
                       "polymorphic %s at a non-immediate type walks the \
                        value and defeats unboxing"
                       name)
                    e.exp_loc)
              else if suffix_mem name minmax_heads then (
                match arg_ty with
                | Some ty when is_immediate_type ty -> ()
                | Some ty when Tast_util.is_float_type ty ->
                  add ("poly:" ^ Filename.basename name)
                    (Printf.sprintf
                       "%s on float re-boxes its result; use an if/else"
                       name)
                    e.exp_loc
                | _ ->
                  add ("poly:" ^ Filename.basename name)
                    (Printf.sprintf "polymorphic %s at a non-immediate type"
                       name)
                    e.exp_loc)
              else if suffix_mem name safe_externs then ()
              else
                match suffix_assoc name alloc_externs with
                | Some (_, why) ->
                  add ("extern:" ^ name)
                    (Printf.sprintf "%s %s" name why)
                    e.exp_loc
                | None ->
                  add ("extern:" ^ name)
                    (Printf.sprintf
                       "%s is outside the call graph and not on the \
                        allocation-free list"
                       name)
                    e.exp_loc);
           Tast_iterator.default_iterator.expr sub e)
       | _ -> Tast_iterator.default_iterator.expr sub e
     in
     it := { Tast_iterator.default_iterator with expr = visit };
     !it.expr !it node.body);
  List.rev !effects

(* ---------------------------------------------------------------- *)
(* The rule                                                          *)
(* ---------------------------------------------------------------- *)

let synthetic_finding ~(rule : Rule.t) ~severity ~detail ~symbol message =
  {
    Finding.rule = rule.id;
    rule_name = rule.name;
    severity;
    file = "<manifest>";
    line = 0;
    col = 0;
    symbol;
    detail;
    message;
  }

let check ~manifest ~rule (loader : Loader.t) =
  let g = Callgraph.build loader in
  let cut_names = List.map fst manifest.cuts in
  let follow (n : Callgraph.node) =
    n.kind = Callgraph.Func && not (List.mem n.name cut_names)
  in
  let parents = Callgraph.reachable g ~roots:manifest.entries ~follow in
  let findings = ref [] in
  (* Manifest drift: an entry or cut naming nothing is a silent hole in
     the proof — refuse it loudly. *)
  List.iter
    (fun entry ->
      if not (Callgraph.mem g entry) then
        findings :=
          synthetic_finding ~rule ~severity:Finding.Error
            ~detail:("missing-entry:" ^ entry) ~symbol:entry
            (Printf.sprintf
               "hot-entry manifest names %s but no such function exists in \
                the call graph; fix the manifest so the zero-alloc proof \
                stays meaningful"
               entry)
          :: !findings)
    manifest.entries;
  List.iter
    (fun (cut, why) ->
      match Callgraph.find g cut with
      | None ->
        findings :=
          synthetic_finding ~rule ~severity:Finding.Error
            ~detail:("missing-cut:" ^ cut) ~symbol:cut
            (Printf.sprintf
               "amortized cut %s no longer exists in the call graph; drop \
                or update the manifest entry"
               cut)
          :: !findings
      | Some n ->
        findings :=
          Rule.make_finding ~rule ~severity:Finding.Info ~unit:n.unit_
            ~loc:n.loc ~symbol:n.symbol ~detail:("amortized-cut:" ^ cut)
            (Printf.sprintf
               "traversal cut at %s: %s (accepted amortized work, baselined \
                with this note)"
               cut why)
          :: !findings)
    manifest.cuts;
  (* Every reached function with direct effects is a finding, with the
     call path from its manifest entry in the message. *)
  List.iter
    (fun name ->
      if Hashtbl.mem parents name then
        match Callgraph.find g name with
        | None -> ()
        | Some node ->
          let path = Callgraph.witness parents name in
          let via =
            match path with
            | [] | [ _ ] -> "hot entry"
            | root :: _ ->
              Printf.sprintf "reachable from %s via %s" root
                (String.concat " -> " path)
          in
          List.iter
            (fun { tag; why; eloc } ->
              findings :=
                Rule.make_finding ~rule ~unit:node.unit_ ~loc:eloc
                  ~symbol:node.symbol ~detail:tag
                  (Printf.sprintf "%s: %s (%s)" node.name why via)
                :: !findings)
            (direct_effects g node))
    g.order;
  List.rev !findings

let make ?(manifest = default_manifest) () =
  let rec rule =
    {
      Rule.id = "R7";
      name = "hot-path-proof";
      severity = Finding.Warning;
      doc =
        "interprocedural allocation-effect inference: every function \
         reachable from the hot-entry manifest must be allocation-free \
         (closure capture, heap construction, boxed returns, polymorphic \
         compare, partial application, unknown externs)";
      check = (fun loader -> check ~manifest ~rule loader);
    }
  in
  rule

let rule = make ()
