(** Whole-repo call graph over the loaded typedtrees.

    Nodes are value bindings (top level and nested [module M = struct])
    named by normalized fully-qualified path, e.g.
    ["Ptrng_noise.Source.fill"].  Edges are resolved references:
    same-unit [Pident] uses resolve through a stamp table, cross-unit
    [Pdot] paths through {!Tast_util.normalize_path} (so dune's
    [Lib__Mod] mangling and the [Lib.Mod] alias meet at one node).
    Construction, SCC condensation and every adjacency list are
    deterministic. *)

type kind =
  | Func  (** Has syntactic parameters or an arrow type: runs per call. *)
  | Value
      (** Plain value binding: its right-hand side runs once at module
          initialization, so referencing it costs nothing per call. *)

type node = {
  name : string;       (** Normalized fully-qualified name. *)
  unit_ : Loader.unit_info;
  symbol : string;     (** Unqualified binding name. *)
  loc : Location.t;
  expr : Typedtree.expression;  (** Whole right-hand side. *)
  params : Typedtree.pattern list;  (** Peeled curried parameters. *)
  body : Typedtree.expression;      (** [expr] after peeling. *)
  kind : kind;
  inline : bool;       (** Binding carries [[@inline]]. *)
  mutable callees : string list;    (** Resolved in-graph names, sorted. *)
  mutable externals : string list;
      (** Normalized referenced paths with no node (stdlib, externals),
          sorted. *)
}

type resolver
(** Per-unit name resolution state (stamp table + module aliases). *)

type resolution =
  | Internal of string  (** A node of the graph, by canonical name. *)
  | External of string
      (** Canonical dotted path with no node (stdlib, C stubs, units
          outside the loaded set). *)
  | Local
      (** A function-local binding — its body is part of the enclosing
          node and needs no edge. *)

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list;  (** All node names, sorted. *)
  sccs : string list list;
      (** Strongly connected components, callees-first (reverse
          topological), members in discovery order. *)
  scc_of : (string, int) Hashtbl.t;  (** Node name to index in [sccs]. *)
  resolvers : (string, resolver) Hashtbl.t;
      (** Per-unit resolution state, keyed by unit modname. *)
}

val build : Loader.t -> t
(** Construct the graph of every loaded unit; pure, deterministic. *)

val find : t -> string -> node option
(** The node with the given canonical name, if any. *)

val mem : t -> string -> bool
(** Whether a canonical name has a node. *)

val resolve : t -> Loader.unit_info -> Path.t -> resolution
(** Resolve a referenced path in the context of the given unit:
    same-unit bindings through the stamp table, everything else
    through module-alias expansion and path normalization. *)

val resolve_head : t -> node -> Typedtree.expression -> resolution option
(** {!resolve} applied to an identifier expression (an application
    head), in the node's defining unit; [None] when the expression is
    not an identifier. *)

val scc_index : t -> string -> int option
(** Position of the node's SCC in the callees-first [sccs] order. *)

val scc_members : t -> string -> string list
(** Members of the SCC containing the named node ([[]] if unknown). *)

val reachable :
  t -> roots:string list -> follow:(node -> bool) ->
  (string, string option) Hashtbl.t
(** Breadth-first reachability from [roots] along callee edges,
    entering only nodes for which [follow] holds (roots included).
    The result maps each reached name to its BFS parent ([None] for a
    root) — feed it to {!witness} for a call-path explanation. *)

val witness : (string, string option) Hashtbl.t -> string -> string list
(** Call path from a root to the named node, root first, as recorded by
    {!reachable}. *)

val to_json : t -> Ptrng_telemetry.Json.t
(** The [--graph-out] dump (schema ["ptrng-callgraph/1"]). *)
