(** A pair of free-running ring oscillators — the entropy source of the
    eRO-TRNG (paper Fig. 4) and the device under test of the
    differential measurement (paper Fig. 6).

    The paper's coefficients describe the {e relative} jitter between
    the two rings.  Splitting each coefficient equally between two
    independent oscillators reproduces the relative process exactly
    (independent variances add), so [of_relative] is the calibrated way
    to build a pair from a measured or modelled (b_th, b_fl). *)

type t = {
  osc1 : Oscillator.config;  (** The sampled ("fast counter") ring. *)
  osc2 : Oscillator.config;  (** The sampling ("time base") ring. *)
}

val of_relative :
  ?flicker_generator:[ `Spectral | `Kasdin | `Voss | `None ] ->
  ?detuning:float ->
  f0:float ->
  relative:Ptrng_noise.Psd_model.phase ->
  unit ->
  t
(** [of_relative ~f0 ~relative ()] builds two independent oscillators,
    each carrying half of each [relative] coefficient.  [detuning] is
    the fractional frequency offset between the rings (osc1 runs at
    [f0 * (1 + detuning/2)], osc2 at [f0 * (1 - detuning/2)]); default
    1e-4, the natural mismatch of two "identical" FPGA rings, which
    also dithers the counter quantization. *)

val paper_pair : unit -> t
(** The pair calibrated to the paper's experiment: f0 = 103 MHz,
    relative b_th = 276.04, b_fl = 1.9152e6 (the value implied by
    r_N = 5354/(5354+N)). *)

val paper_relative : Ptrng_noise.Psd_model.phase
(** The paper's relative-jitter coefficients. *)

val paper_f0 : float
(** 103 MHz. *)

val simulate :
  ?domains:int -> Ptrng_prng.Rng.t -> t -> n:int -> float array * float array
(** [simulate rng pair ~n] returns [n] simulated periods of each
    oscillator, drawn from independent substreams of [rng].  Each
    oscillator's thermal and flicker synthesis runs over a
    {!Ptrng_exec.Pool}; traces are bit-identical for every [?domains]. *)

type stream
(** A streaming simulator of the pair, optionally driven by a
    deterministic {!Ptrng_device.Scenario} schedule. *)

val stream :
  ?flicker_block:int ->
  ?scenario:Ptrng_device.Scenario.t ->
  Ptrng_prng.Rng.t ->
  t ->
  stream
(** [stream rng pair] is the streaming form of {!simulate}: the same
    two generator splits, one {!Oscillator.source} per ring, so with
    [`Spectral] flicker and [flicker_block = n] the chunk-wise fills
    reproduce [simulate rng pair ~n] bit for bit while allocating
    nothing per chunk.  See {!Oscillator.source} for [flicker_block].

    With [?scenario] the stream re-derives the per-sample noise
    scaling from the schedule: b_th, b_fl and f0 multipliers rescale
    the thermal jitter by [sqrt u / r^1.5] and the flicker
    fractional frequency by [sqrt v / r] (for coefficient multipliers
    u, v and frequency ratio r), coupling pulls both rings toward
    their common mean, and the injected tone adds deterministic jitter
    to the sampled ring.  The identity schedule is bit-identical to
    the plain stream, and the whole path draws single-threaded from
    the two split sources, so scheduled fills are bit-identical for
    every domain count and chunk partitioning. *)

val sources : stream -> Oscillator.source * Oscillator.source
(** The two underlying ring sources, sampled then sampling. *)

val position : stream -> int
(** Periods delivered so far. *)

val skip : stream -> int -> unit
(** [skip st n] advances the stream by [n] periods without
    materializing them: both sources fast-forward
    ({!Oscillator.source_skip}) and, under a scenario, the schedule
    position moves with them (the schedule is a pure function of the
    absolute index, so nothing needs evaluating).  A subsequent
    {!fill} is bit-identical to a continuous run — this is what makes
    post-mortem incident replay from a recorded stream position cheap
    (see docs/POSTMORTEM.md).
    @raise Invalid_argument if [n] is negative, or for a random-walk
    FM source. *)

val fill : stream -> p1:Float.Array.t -> p2:Float.Array.t -> len:int -> unit
(** [fill st ~p1 ~p2 ~len] writes the next [len] periods of each
    oscillator into the caller's buffers.
    @raise Invalid_argument if [len] exceeds either buffer, or under a
    scenario if a ring has random-walk FM (see
    {!Oscillator.fill_components}). *)
