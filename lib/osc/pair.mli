(** A pair of free-running ring oscillators — the entropy source of the
    eRO-TRNG (paper Fig. 4) and the device under test of the
    differential measurement (paper Fig. 6).

    The paper's coefficients describe the {e relative} jitter between
    the two rings.  Splitting each coefficient equally between two
    independent oscillators reproduces the relative process exactly
    (independent variances add), so [of_relative] is the calibrated way
    to build a pair from a measured or modelled (b_th, b_fl). *)

type t = {
  osc1 : Oscillator.config;  (** The sampled ("fast counter") ring. *)
  osc2 : Oscillator.config;  (** The sampling ("time base") ring. *)
}

val of_relative :
  ?flicker_generator:[ `Spectral | `Kasdin | `Voss | `None ] ->
  ?detuning:float ->
  f0:float ->
  relative:Ptrng_noise.Psd_model.phase ->
  unit ->
  t
(** [of_relative ~f0 ~relative ()] builds two independent oscillators,
    each carrying half of each [relative] coefficient.  [detuning] is
    the fractional frequency offset between the rings (osc1 runs at
    [f0 * (1 + detuning/2)], osc2 at [f0 * (1 - detuning/2)]); default
    1e-4, the natural mismatch of two "identical" FPGA rings, which
    also dithers the counter quantization. *)

val paper_pair : unit -> t
(** The pair calibrated to the paper's experiment: f0 = 103 MHz,
    relative b_th = 276.04, b_fl = 1.9152e6 (the value implied by
    r_N = 5354/(5354+N)). *)

val paper_relative : Ptrng_noise.Psd_model.phase
(** The paper's relative-jitter coefficients. *)

val paper_f0 : float
(** 103 MHz. *)

val simulate :
  ?domains:int -> Ptrng_prng.Rng.t -> t -> n:int -> float array * float array
(** [simulate rng pair ~n] returns [n] simulated periods of each
    oscillator, drawn from independent substreams of [rng].  Each
    oscillator's thermal and flicker synthesis runs over a
    {!Ptrng_exec.Pool}; traces are bit-identical for every [?domains]. *)
