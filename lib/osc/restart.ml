let ensemble ?domains rng cfg ~restarts ~n =
  if restarts <= 0 then invalid_arg "Restart.ensemble: restarts <= 0";
  if n <= 0 then invalid_arg "Restart.ensemble: n <= 0";
  (* The reproducible flicker transient: one trajectory, drawn once. *)
  let flicker_cfg =
    Oscillator.config ~flicker_generator:cfg.Oscillator.flicker_generator
      ~f0:cfg.Oscillator.f0
      ~phase:{ cfg.Oscillator.phase with Ptrng_noise.Psd_model.b_th = 0.0 }
      ()
  in
  let transient =
    if cfg.Oscillator.phase.Ptrng_noise.Psd_model.b_fl > 0.0 then
      Oscillator.periods ?domains (Ptrng_prng.Rng.split rng) flicker_cfg ~n
    else Array.make n (1.0 /. cfg.Oscillator.f0)
  in
  let sigma_th = Oscillator.thermal_sigma cfg in
  (* Thermal jitter is fresh on every restart: one child stream per
     restart, so the ensemble is independent of the domain count. *)
  Ptrng_exec.Pool.parallel_map_streams ?domains ~rng
    (fun _ child ->
      let g = Ptrng_prng.Gaussian.create child in
      Array.init n (fun k -> transient.(k) +. (sigma_th *. Ptrng_prng.Gaussian.draw g)))
    restarts

let accumulated_variance runs ~n =
  let restarts = Array.length runs in
  if restarts < 2 then invalid_arg "Restart.accumulated_variance: need >= 2 restarts";
  if n <= 0 || n > Array.length runs.(0) then
    invalid_arg "Restart.accumulated_variance: n outside the simulated length";
  let sums =
    Array.map
      (fun periods ->
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. periods.(k)
        done;
        !acc)
      runs
  in
  Ptrng_stats.Descriptive.variance sums

let variance_curve runs ~ns =
  let len = if Array.length runs = 0 then 0 else Array.length runs.(0) in
  Array.to_list ns
  |> List.filter_map (fun n ->
         if n > 0 && n <= len then Some (n, accumulated_variance runs ~n) else None)
  |> Array.of_list

let growth_exponent curve =
  if Array.length curve < 3 then invalid_arg "Restart.growth_exponent: need >= 3 points";
  let x = Array.map (fun (n, _) -> log10 (float_of_int n)) curve in
  let y = Array.map (fun (_, v) -> log10 v) curve in
  (Ptrng_stats.Regression.linear ~x ~y).slope
