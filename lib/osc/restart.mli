(** Oscillator-restart experiments.

    A practical answer to the dependence problem the paper exposes
    (used by the same research group in follow-up work): instead of
    letting the rings free-run, *restart* them for every measurement.
    The low-frequency flicker noise behaves as a reproducible transient
    over the short post-restart window — to first order the same phase
    trajectory every time — while the thermal noise is fresh on every
    restart.  The variance of the accumulated phase {e across restarts}
    therefore grows linearly (thermal only), recovering Bienaymé
    linearity and giving a flicker-free measurement of sigma_th without
    fitting out an N^2 term.

    We model the restart transient accordingly: one flicker trajectory
    drawn once and replayed on every restart, thermal jitter redrawn
    each time. *)

val ensemble :
  ?domains:int ->
  Ptrng_prng.Rng.t -> Oscillator.config -> restarts:int -> n:int ->
  float array array
(** [ensemble rng cfg ~restarts ~n] simulates [restarts] restarts of
    [n] periods each; element [(r, k)] is period k after restart r.
    Restarts are distributed over a {!Ptrng_exec.Pool}, one child
    stream per restart — bit-identical for every [?domains].
    @raise Invalid_argument on non-positive sizes. *)

val accumulated_variance : float array array -> n:int -> float
(** Variance across restarts of the duration of the first [n] periods
    — flat thermal growth [n sigma_th^2] under the restart model.
    @raise Invalid_argument if [n] exceeds the simulated length or
    fewer than 2 restarts are available. *)

val variance_curve : float array array -> ns:int array -> (int * float) array
(** {!accumulated_variance} over a grid (entries beyond the data are
    skipped). *)

val growth_exponent : (int * float) array -> float
(** Log-log slope of the curve; ~1 demonstrates that restarts restore
    effective independence. @raise Invalid_argument with < 3 points. *)
