(** Event-level ring-oscillator simulator.

    The oscillator is simulated period by period.  Writing [T0 = 1/f0],
    period k lasts

    [T_k = T0 + T0 * y_k + g_k]

    where [g_k] is iid Gaussian thermal jitter with variance
    [sigma_th^2 = b_th / f0^3] (white FM — exactly the independent part
    of the paper's model) and [y_k] is flicker fractional-frequency
    noise with one-sided level [h_{-1} = 2 b_fl / f0^2] (the
    autocorrelated part).  With these calibrations the statistic
    [s_N] built from the simulated periods has variance

    [sigma_N^2 = (2 b_th / f0^3) N + (8 ln2 b_fl / f0^4) N^2]

    — the paper's eq. 11 — which the test-suite verifies against the
    closed form. *)

type config = {
  f0 : float;                              (** Nominal frequency, Hz. *)
  phase : Ptrng_noise.Psd_model.phase;     (** This oscillator's (b_th, b_fl). *)
  flicker_generator : [ `Spectral | `Kasdin | `Voss | `None ];
      (** Which 1/f synthesiser drives [y_k]; [`Spectral] is the fast,
          exactly-calibrated default, the others are cross-checks, and
          [`None] disables flicker regardless of [b_fl] (the
          "state-of-the-art model" baseline with independent jitter). *)
  rw_hm2 : float;
      (** Optional random-walk FM (aging/temperature drift) with
          one-sided level [S_y = h_{-2}/f^2]; 0 in the paper's model.
          Adds an N^3 term [(4 pi^2/3) h_{-2} N^3 T0^3] to sigma_N^2 —
          an even steeper departure from Bienayme linearity than
          flicker. *)
}

val config :
  ?flicker_generator:[ `Spectral | `Kasdin | `Voss | `None ] ->
  ?rw_hm2:float ->
  f0:float ->
  phase:Ptrng_noise.Psd_model.phase ->
  unit ->
  config
(** @raise Invalid_argument on non-positive [f0] or negative
    coefficients. *)

val thermal_sigma : config -> float
(** Per-period thermal jitter sigma = sqrt (b_th / f0^3), seconds. *)

val periods : ?domains:int -> Ptrng_prng.Rng.t -> config -> n:int -> float array
(** [periods rng cfg ~n] simulates [n] consecutive oscillation periods
    (seconds).  Thermal jitter and spectral flicker synthesis run over
    a {!Ptrng_exec.Pool}; the trace is bit-identical for every
    [?domains] value. *)

type source
(** A streaming period generator: thermal, flicker and random-walk
    noise sources plus the integrator state, filling caller-owned
    buffers chunk by chunk with no per-sample allocation. *)

val source : ?flicker_block:int -> Ptrng_prng.Rng.t -> config -> source
(** [source rng cfg] builds a streaming simulator drawing its roots
    from [rng] in the same order as {!periods}, so with [`Spectral] (or
    [`None]) flicker and [flicker_block = n] the stream replays
    [periods rng cfg ~n] bit for bit.  [flicker_block] (default 2^16,
    rounded up to a power of two) bounds the flicker correlation the
    stream reproduces — statistics probing longer lags need a larger
    block.  [`Voss] octaves are likewise sized from [flicker_block].
    @raise Invalid_argument if [flicker_block <= 0]. *)

val fill_periods : source -> ?len:int -> Float.Array.t -> unit
(** [fill_periods src buf] writes the next [len] (default the buffer
    length) simulated periods into [buf.(0 .. len-1)], seconds.
    @raise Invalid_argument if [len] exceeds the buffer length. *)

val fill_periods_n : source -> len:int -> Float.Array.t -> unit
(** {!fill_periods} with a required [len] — the allocation-free
    spelling for per-segment callers (no [Some] built at the call
    site); [fill_periods] is a thin wrapper over it. *)

val fill_components :
  source -> len:int -> thermal:Float.Array.t -> flicker:Float.Array.t -> unit
(** [fill_components src ~len ~thermal ~flicker] advances the stream by
    [len] samples, writing the raw
    thermal period jitter g_k (seconds, baseline sigma included) into
    [thermal] and the fractional flicker frequency y_k into [flicker]
    — the two components {!fill_periods} would have combined as
    [t0 + g_k + t0 y_k].  A scenario-aware consumer
    ({!Ptrng_osc.Pair.fill} under a schedule) rescales them per sample
    before combining; the identity schedule reproduces {!fill_periods}
    bit for bit.
    @raise Invalid_argument if [len] exceeds a buffer, or for sources
    with random-walk FM (express aging as a scenario drift profile
    instead). *)

val source_skip : source -> int -> unit
(** Advance the stream without materializing periods (the random-walk
    integrator still consumes its draws).
    @raise Invalid_argument on negative count. *)

val source_reset : source -> unit
(** Rewind to period 0, replaying the identical stream.
    @raise Invalid_argument for sources with random-walk FM, whose
    sampler state cannot be re-derived. *)

val source_position : source -> int
(** Periods delivered (or skipped) so far. *)

val edges_of_periods : ?t0:float -> float array -> float array
(** Cumulative rising-edge times: [n+1] instants starting at [t0]
    (default 0). *)

val jitter_of_periods : f0:float -> float array -> float array
(** The period-jitter process of the paper's eq. 3:
    [J_k = T_k - 1/f0]. *)

val excess_phase : f0:float -> float array -> float array
(** [excess_phase ~f0 periods] is the paper's phi(t) (eq. 2) sampled at
    each rising edge: [phi_k = -2 pi f0 (t_k - k/f0)] where [t_k] is
    the simulated edge time.  Estimating the PSD of this series at
    sample rate [f0] and halving it (one-sided to the paper's two-sided
    convention) must reproduce [S_phi = b_fl/f^3 + b_th/f^2] — the test
    suite closes that loop. *)
