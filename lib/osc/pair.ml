type t = {
  osc1 : Oscillator.config;
  osc2 : Oscillator.config;
}

let of_relative ?flicker_generator ?(detuning = 1e-4) ~f0 ~relative () =
  let open Ptrng_noise.Psd_model in
  let half = { b_th = relative.b_th /. 2.0; b_fl = relative.b_fl /. 2.0 } in
  let f1 = f0 *. (1.0 +. (detuning /. 2.0)) in
  let f2 = f0 *. (1.0 -. (detuning /. 2.0)) in
  {
    osc1 = Oscillator.config ?flicker_generator ~f0:f1 ~phase:half ();
    osc2 = Oscillator.config ?flicker_generator ~f0:f2 ~phase:half ();
  }

let paper_f0 = 103e6

(* b_fl = b_th * f0 / (4 ln2 * 5354): the value that makes
   r_N = 5354 / (5354 + N) as measured in the paper. *)
let paper_relative =
  let b_th = 276.04 in
  { Ptrng_noise.Psd_model.b_th; b_fl = b_th *. paper_f0 /. (4.0 *. log 2.0 *. 5354.0) }

let paper_pair () = of_relative ~f0:paper_f0 ~relative:paper_relative ()

let simulate ?domains rng pair ~n =
  let rng1 = Ptrng_prng.Rng.split rng in
  let rng2 = Ptrng_prng.Rng.split rng in
  let p1 = Oscillator.periods ?domains rng1 pair.osc1 ~n in
  let p2 = Oscillator.periods ?domains rng2 pair.osc2 ~n in
  (p1, p2)

type stream = {
  s1 : Oscillator.source;
  s2 : Oscillator.source;
}

let stream ?flicker_block rng pair =
  (* Same substream discipline as [simulate]: two splits, one per
     oscillator, so a stream replays the batch traces bit for bit. *)
  let rng1 = Ptrng_prng.Rng.split rng in
  let rng2 = Ptrng_prng.Rng.split rng in
  {
    s1 = Oscillator.source ?flicker_block rng1 pair.osc1;
    s2 = Oscillator.source ?flicker_block rng2 pair.osc2;
  }

let fill st ~p1 ~p2 ~len =
  Oscillator.fill_periods st.s1 ~len p1;
  Oscillator.fill_periods st.s2 ~len p2
