type t = {
  osc1 : Oscillator.config;
  osc2 : Oscillator.config;
}

let of_relative ?flicker_generator ?(detuning = 1e-4) ~f0 ~relative () =
  let open Ptrng_noise.Psd_model in
  let half = { b_th = relative.b_th /. 2.0; b_fl = relative.b_fl /. 2.0 } in
  let f1 = f0 *. (1.0 +. (detuning /. 2.0)) in
  let f2 = f0 *. (1.0 -. (detuning /. 2.0)) in
  {
    osc1 = Oscillator.config ?flicker_generator ~f0:f1 ~phase:half ();
    osc2 = Oscillator.config ?flicker_generator ~f0:f2 ~phase:half ();
  }

let paper_f0 = 103e6

(* b_fl = b_th * f0 / (4 ln2 * 5354): the value that makes
   r_N = 5354 / (5354 + N) as measured in the paper. *)
let paper_relative =
  let b_th = 276.04 in
  { Ptrng_noise.Psd_model.b_th; b_fl = b_th *. paper_f0 /. (4.0 *. log 2.0 *. 5354.0) }

let paper_pair () = of_relative ~f0:paper_f0 ~relative:paper_relative ()

let simulate ?domains rng pair ~n =
  let rng1 = Ptrng_prng.Rng.split rng in
  let rng2 = Ptrng_prng.Rng.split rng in
  let p1 = Oscillator.periods ?domains rng1 pair.osc1 ~n in
  let p2 = Oscillator.periods ?domains rng2 pair.osc2 ~n in
  (p1, p2)

module FA = Float.Array
module Scenario = Ptrng_device.Scenario

(* Scenario fills stage the per-ring noise components through fixed
   scratch segments, mirroring the flicker staging inside
   Oscillator.fill_periods. *)
let sc_seg = 4096

type stream = {
  s1 : Oscillator.source;
  s2 : Oscillator.source;
  scen : Scenario.t option;
  sc_state : Scenario.state;
  sc_th1 : FA.t;
  sc_fl1 : FA.t;
  sc_th2 : FA.t;
  sc_fl2 : FA.t;
  sc_f1 : float;      (* nominal (unscaled) per-ring frequencies *)
  sc_f2 : float;
  mutable sc_pos : int;
}

let stream ?flicker_block ?scenario rng pair =
  (* Same substream discipline as [simulate]: two splits, one per
     oscillator, so a stream replays the batch traces bit for bit. *)
  let rng1 = Ptrng_prng.Rng.split rng in
  let rng2 = Ptrng_prng.Rng.split rng in
  let scratch () =
    match scenario with Some _ -> FA.create sc_seg | None -> FA.create 0
  in
  {
    s1 = Oscillator.source ?flicker_block rng1 pair.osc1;
    s2 = Oscillator.source ?flicker_block rng2 pair.osc2;
    scen = scenario;
    sc_state = Scenario.state ();
    sc_th1 = scratch ();
    sc_fl1 = scratch ();
    sc_th2 = scratch ();
    sc_fl2 = scratch ();
    sc_f1 = pair.osc1.Oscillator.f0;
    sc_f2 = pair.osc2.Oscillator.f0;
    sc_pos = 0;
  }

let sources st = (st.s1, st.s2)

let position st =
  match st.scen with
  | Some _ -> st.sc_pos
  | None -> Oscillator.source_position st.s1

(* One scheduled sample.  With the schedule at identity (all
   multipliers 1, no coupling, no tone) every factor below is exactly
   1.0 and the combination order matches fill_periods —
   [(t0 +. g) +. (t0 *. y)] — so the scenario path is bit-identical to
   the plain stream.  Under a schedule, scaling b_th by u and f0 by r
   scales the thermal period jitter sigma = sqrt(b_th / f^3) by
   [sqrt u / r^1.5] and the flicker fractional-frequency amplitude
   sqrt(h_-1) = sqrt(2 b_fl / f^2) by [sqrt v / r]; coupling c pulls
   both frequencies and both jitter deviations toward their common
   mean (injection locking: the relative process collapses while each
   ring keeps oscillating); the tone adds deterministic jitter to the
   sampled ring only. *)
let fill_scenario st scen ~p1 ~p2 ~len =
  let state = st.sc_state in
  let f1n = st.sc_f1 and f2n = st.sc_f2 in
  let off = ref 0 in
  while !off < len do
    let seg = min sc_seg (len - !off) in
    Oscillator.fill_components st.s1 ~len:seg ~thermal:st.sc_th1
      ~flicker:st.sc_fl1;
    Oscillator.fill_components st.s2 ~len:seg ~thermal:st.sc_th2
      ~flicker:st.sc_fl2;
    let base = !off in
    for j = 0 to seg - 1 do
      Scenario.eval scen (st.sc_pos + base + j) state;
      let f1 = f1n *. state.f0_mult and f2 = f2n *. state.f0_mult in
      let c = state.coupling in
      (* Two scalar ifs, not one returning a pair: a tuple here is a
         fresh 2-block per sample (R7).  Same float expressions, same
         results. *)
      let f1e =
        if c > 0.0 then f1 +. (c *. ((0.5 *. (f1 +. f2)) -. f1)) else f1
      in
      let f2e =
        if c > 0.0 then f2 +. (c *. ((0.5 *. (f1 +. f2)) -. f2)) else f2
      in
      let t01 = 1.0 /. f1e and t02 = 1.0 /. f2e in
      let r1 = f1e /. f1n and r2 = f2e /. f2n in
      let sth = sqrt state.th_mult and sfl = sqrt state.fl_mult in
      let g1 = sth /. (r1 *. sqrt r1) *. FA.unsafe_get st.sc_th1 j
      and g2 = sth /. (r2 *. sqrt r2) *. FA.unsafe_get st.sc_th2 j in
      let y1 = sfl /. r1 *. FA.unsafe_get st.sc_fl1 j
      and y2 = sfl /. r2 *. FA.unsafe_get st.sc_fl2 j in
      if c > 0.0 then begin
        let d1 = g1 +. (t01 *. y1) and d2 = g2 +. (t02 *. y2) in
        let m = 0.5 *. (d1 +. d2) in
        FA.unsafe_set p1 (base + j)
          (t01 +. (d1 +. (c *. (m -. d1))) +. (t01 *. state.tone));
        FA.unsafe_set p2 (base + j) (t02 +. (d2 +. (c *. (m -. d2))))
      end
      else begin
        FA.unsafe_set p1 (base + j)
          ((t01 +. g1) +. (t01 *. y1) +. (t01 *. state.tone));
        FA.unsafe_set p2 (base + j) ((t02 +. g2) +. (t02 *. y2))
      end
    done;
    off := !off + seg
  done;
  st.sc_pos <- st.sc_pos + len

(* Skipping a scenario stream needs no schedule evaluation: the
   schedule is a pure function of the absolute sample index, so
   advancing both sources and the position is enough — the next fill
   picks the schedule up exactly where a continuous run would be. *)
let skip st n =
  if n < 0 then invalid_arg "Pair.skip: negative";
  Oscillator.source_skip st.s1 n;
  Oscillator.source_skip st.s2 n;
  st.sc_pos <- st.sc_pos + n

let fill st ~p1 ~p2 ~len =
  match st.scen with
  | None ->
    Oscillator.fill_periods_n st.s1 ~len p1;
    Oscillator.fill_periods_n st.s2 ~len p2
  | Some scen ->
    if len < 0 || len > FA.length p1 || len > FA.length p2 then
      invalid_arg "Pair.fill: bad len";
    fill_scenario st scen ~p1 ~p2 ~len
