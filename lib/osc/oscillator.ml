type config = {
  f0 : float;
  phase : Ptrng_noise.Psd_model.phase;
  flicker_generator : [ `Spectral | `Kasdin | `Voss | `None ];
  rw_hm2 : float;
}

let config ?(flicker_generator = `Spectral) ?(rw_hm2 = 0.0) ~f0 ~phase () =
  if f0 <= 0.0 then invalid_arg "Oscillator.config: f0 <= 0";
  if phase.Ptrng_noise.Psd_model.b_th < 0.0 || phase.b_fl < 0.0 then
    invalid_arg "Oscillator.config: negative phase-noise coefficient";
  if rw_hm2 < 0.0 then invalid_arg "Oscillator.config: negative rw_hm2";
  { f0; phase; flicker_generator; rw_hm2 }

let thermal_sigma cfg =
  sqrt (cfg.phase.Ptrng_noise.Psd_model.b_th /. (cfg.f0 ** 3.0))

(* Flicker fractional-frequency samples at rate f0 with one-sided level
   h_{-1} = 2 b_fl / f0^2, produced by the selected generator. *)
let flicker_samples ?domains rng cfg n =
  let hm1 = 2.0 *. cfg.phase.Ptrng_noise.Psd_model.b_fl /. (cfg.f0 *. cfg.f0) in
  if hm1 = 0.0 then None
  else
    match cfg.flicker_generator with
    | `None -> None
    | `Spectral ->
      let m = Ptrng_signal.Fft.next_pow2 n in
      let model = { Ptrng_noise.Psd_model.h0 = 0.0; hm1; hm2 = 0.0 } in
      let y =
        Ptrng_noise.Spectral_synth.generate_frac_freq ?domains rng ~model ~fs:cfg.f0 m
      in
      Some (if m = n then y else Array.sub y 0 n)
    | `Kasdin ->
      Some (Ptrng_noise.Kasdin.flicker_fm_block ?domains rng ~hm1 ~fs:cfg.f0 n)
    | `Voss ->
      (* Per-source sigma inverts Voss.level_hm1 (= sigma^2 / ln 2);
         octaves are chosen so the slowest source spans the block. *)
      let sigma = sqrt (hm1 *. log 2.0) in
      let octaves =
        let rec count o span = if span >= n || o >= 40 then o else count (o + 1) (span * 2) in
        count 1 1
      in
      let v = Ptrng_noise.Voss.create rng ~octaves in
      (* The batch path intentionally keeps the deprecated whole-array
         generator: it is the reference the streamed path is tested
         against. *)
      Some
        (Array.map (fun s -> sigma *. s) (Ptrng_noise.Voss.generate v n))
      [@alert "-deprecated"]

let periods ?domains rng cfg ~n =
  if n <= 0 then invalid_arg "Oscillator.periods: n <= 0";
  let t0 = 1.0 /. cfg.f0 in
  let sigma_th = thermal_sigma cfg in
  let out =
    if sigma_th > 0.0 then
      (* Thermal jitter is white: chunked child streams, so the trace
         is bit-identical for every domain count. *)
      Ptrng_exec.Pool.parallel_init_floats ?domains ~rng
        ~fill:(fun child ~offset ~len out ->
          let g = Ptrng_prng.Gaussian.create child in
          for k = offset to offset + len - 1 do
            out.(k) <- t0 +. (sigma_th *. Ptrng_prng.Gaussian.draw g)
          done)
        n
    else Array.make n t0
  in
  (match flicker_samples ?domains rng cfg n with
  | None -> ()
  | Some y ->
    for k = 0 to n - 1 do
      out.(k) <- out.(k) +. (t0 *. y.(k))
    done);
  if cfg.rw_hm2 > 0.0 then begin
    (* Random-walk FM (aging): y integrates white steps whose variance
       follows from the one-sided level, sigma_w^2 = 2 pi^2 h_{-2}/fs
       (exact in the time domain, no circularity). *)
    let g = Ptrng_prng.Gaussian.create rng in
    let sigma_w = sqrt (2.0 *. Float.pi *. Float.pi *. cfg.rw_hm2 /. cfg.f0) in
    let y = ref 0.0 in
    for k = 0 to n - 1 do
      y := !y +. (sigma_w *. Ptrng_prng.Gaussian.draw g);
      out.(k) <- out.(k) +. (t0 *. !y)
    done
  end;
  out

(* ------------------------------------------------------------------ *)
(* Streaming simulation                                                *)
(* ------------------------------------------------------------------ *)

module FA = Float.Array
module Source = Ptrng_noise.Source

(* Flicker segments are staged through a fixed scratch so an arbitrary
   fill length never allocates. *)
let flicker_seg = 4096

type source = {
  s_t0 : float;
  thermal : Source.t option;
  flicker : Source.t option;
  fl_scratch : FA.t;          (* length flicker_seg when flicker <> None *)
  rw : Ptrng_prng.Gaussian.t option;
  rw_sigma : float;
  rw_carry : FA.t;            (* 1-cell random-walk integrator state *)
  mutable s_pos : int;
}

let default_flicker_block = 1 lsl 16

(* Creation draws from [rng] in the batch path's order — thermal root,
   then flicker root, then the random-walk sampler — so for [`Spectral]
   (and [`None]) flicker a source replays {!periods} bit for bit when
   [flicker_block] is [next_pow2 n] of the batch length. *)
let source ?(flicker_block = default_flicker_block) rng cfg =
  if flicker_block <= 0 then invalid_arg "Oscillator.source: flicker_block <= 0";
  let t0 = 1.0 /. cfg.f0 in
  let sigma_th = thermal_sigma cfg in
  let thermal =
    if sigma_th > 0.0 then Some (Source.create (Source.white ~sigma:sigma_th) rng)
    else None
  in
  let hm1 = 2.0 *. cfg.phase.Ptrng_noise.Psd_model.b_fl /. (cfg.f0 *. cfg.f0) in
  let flicker =
    if hm1 <= 0.0 then None
    else
      match cfg.flicker_generator with
      | `None -> None
      | `Spectral ->
        let block = Ptrng_signal.Fft.next_pow2 flicker_block in
        Some
          (Source.create
             (Source.spectral ~block ~psd:(fun f -> hm1 /. f) ~fs:cfg.f0 ())
             rng)
      | `Kasdin ->
        let taps = min (Ptrng_signal.Fft.next_pow2 flicker_block) (1 lsl 15) in
        Some (Source.create (Source.flicker_fm ~taps ~hm1 ()) rng)
      | `Voss ->
        let sigma = sqrt (hm1 *. log 2.0) in
        let octaves =
          let rec count o span =
            if span >= flicker_block || o >= 40 then o else count (o + 1) (span * 2)
          in
          count 1 1
        in
        Some (Source.create (Source.voss ~octaves ~sigma ()) rng)
  in
  let rw =
    if cfg.rw_hm2 > 0.0 then Some (Ptrng_prng.Gaussian.create rng) else None
  in
  {
    s_t0 = t0;
    thermal;
    flicker;
    fl_scratch =
      (match flicker with Some _ -> FA.create flicker_seg | None -> FA.create 0);
    rw;
    rw_sigma = sqrt (2.0 *. Float.pi *. Float.pi *. cfg.rw_hm2 /. cfg.f0);
    rw_carry = FA.make 1 0.0;
    s_pos = 0;
  }

(* Option-free core: the streaming pair path calls this per segment,
   and a [?len] there would build a [Some] block per call (R7). *)
let fill_periods_n src ~len buf =
  if len < 0 || len > FA.length buf then
    invalid_arg "Oscillator.fill_periods: bad len";
  let t0 = src.s_t0 in
  (match src.thermal with
  | Some th ->
    Source.fill_range th buf ~pos:0 ~len;
    for i = 0 to len - 1 do
      FA.unsafe_set buf i (t0 +. FA.unsafe_get buf i)
    done
  | None -> FA.fill buf 0 len t0);
  (match src.flicker with
  | None -> ()
  | Some fl ->
    let off = ref 0 in
    while !off < len do
      let seg = min flicker_seg (len - !off) in
      Source.fill_range fl src.fl_scratch ~pos:0 ~len:seg;
      let base = !off in
      for j = 0 to seg - 1 do
        FA.unsafe_set buf (base + j)
          (FA.unsafe_get buf (base + j)
          +. (t0 *. FA.unsafe_get src.fl_scratch j))
      done;
      off := !off + seg
    done);
  (match src.rw with
  | None -> ()
  | Some g ->
    let sigma_w = src.rw_sigma in
    let y = ref (FA.get src.rw_carry 0) in
    for i = 0 to len - 1 do
      y := !y +. (sigma_w *. Ptrng_prng.Gaussian.draw g);
      FA.unsafe_set buf i (FA.unsafe_get buf i +. (t0 *. !y))
    done;
    FA.set src.rw_carry 0 !y);
  src.s_pos <- src.s_pos + len

let fill_periods src ?len buf =
  fill_periods_n src
    ~len:(match len with Some l -> l | None -> FA.length buf)
    buf

(* The scenario path needs the two noise components separately — the
   schedule rescales them per sample before they are combined — so this
   writes the raw thermal jitter (seconds, baseline sigma included) and
   the fractional flicker frequency y_k into caller buffers, drawing
   from the same sources in the same order as {!fill_periods}. *)
(* [len] is required: the scenario loop calls this per segment, and an
   optional argument would allocate a [Some] block each time (R7). *)
let fill_components src ~len ~thermal ~flicker =
  if len < 0 || len > FA.length thermal || len > FA.length flicker then
    invalid_arg "Oscillator.fill_components: bad len";
  if Option.is_some src.rw then
    invalid_arg
      "Oscillator.fill_components: random-walk FM sources are not \
       scenario-capable (express aging as a Scenario drift profile)";
  (match src.thermal with
  | Some th -> Source.fill_range th thermal ~pos:0 ~len
  | None -> FA.fill thermal 0 len 0.0);
  (match src.flicker with
  | Some fl -> Source.fill_range fl flicker ~pos:0 ~len
  | None -> FA.fill flicker 0 len 0.0);
  src.s_pos <- src.s_pos + len

let source_position src = src.s_pos

let source_skip src n =
  if n < 0 then invalid_arg "Oscillator.source_skip: n < 0";
  Option.iter (fun th -> Source.skip th n) src.thermal;
  Option.iter (fun fl -> Source.skip fl n) src.flicker;
  (match src.rw with
  | None -> ()
  | Some g ->
    let sigma_w = src.rw_sigma in
    let y = ref (FA.get src.rw_carry 0) in
    for _ = 1 to n do
      y := !y +. (sigma_w *. Ptrng_prng.Gaussian.draw g)
    done;
    FA.set src.rw_carry 0 !y);
  src.s_pos <- src.s_pos + n

let source_reset src =
  (* The random-walk sampler draws from the creating generator itself
     (batch parity), so its stream cannot be re-derived. *)
  if Option.is_some src.rw then
    invalid_arg "Oscillator.source_reset: random-walk FM sources cannot rewind";
  Option.iter Source.reset src.thermal;
  Option.iter Source.reset src.flicker;
  FA.set src.rw_carry 0 0.0;
  src.s_pos <- 0

let edges_of_periods ?(t0 = 0.0) periods =
  let n = Array.length periods in
  let edges = Array.make (n + 1) t0 in
  for k = 0 to n - 1 do
    edges.(k + 1) <- edges.(k) +. periods.(k)
  done;
  edges

let jitter_of_periods ~f0 periods =
  if f0 <= 0.0 then invalid_arg "Oscillator.jitter_of_periods: f0 <= 0";
  let t0 = 1.0 /. f0 in
  Array.map (fun t -> t -. t0) periods

let excess_phase ~f0 periods =
  if f0 <= 0.0 then invalid_arg "Oscillator.excess_phase: f0 <= 0";
  let t0 = 1.0 /. f0 in
  let n = Array.length periods in
  let phi = Array.make n 0.0 in
  let time_error = ref 0.0 in
  for k = 0 to n - 1 do
    time_error := !time_error +. (periods.(k) -. t0);
    phi.(k) <- -2.0 *. Float.pi *. f0 *. !time_error
  done;
  phi
