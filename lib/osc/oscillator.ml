type config = {
  f0 : float;
  phase : Ptrng_noise.Psd_model.phase;
  flicker_generator : [ `Spectral | `Kasdin | `Voss | `None ];
  rw_hm2 : float;
}

let config ?(flicker_generator = `Spectral) ?(rw_hm2 = 0.0) ~f0 ~phase () =
  if f0 <= 0.0 then invalid_arg "Oscillator.config: f0 <= 0";
  if phase.Ptrng_noise.Psd_model.b_th < 0.0 || phase.b_fl < 0.0 then
    invalid_arg "Oscillator.config: negative phase-noise coefficient";
  if rw_hm2 < 0.0 then invalid_arg "Oscillator.config: negative rw_hm2";
  { f0; phase; flicker_generator; rw_hm2 }

let thermal_sigma cfg =
  sqrt (cfg.phase.Ptrng_noise.Psd_model.b_th /. (cfg.f0 ** 3.0))

(* Flicker fractional-frequency samples at rate f0 with one-sided level
   h_{-1} = 2 b_fl / f0^2, produced by the selected generator. *)
let flicker_samples ?domains rng cfg n =
  let hm1 = 2.0 *. cfg.phase.Ptrng_noise.Psd_model.b_fl /. (cfg.f0 *. cfg.f0) in
  if hm1 = 0.0 then None
  else
    match cfg.flicker_generator with
    | `None -> None
    | `Spectral ->
      let m = Ptrng_signal.Fft.next_pow2 n in
      let model = { Ptrng_noise.Psd_model.h0 = 0.0; hm1; hm2 = 0.0 } in
      let y =
        Ptrng_noise.Spectral_synth.generate_frac_freq ?domains rng ~model ~fs:cfg.f0 m
      in
      Some (if m = n then y else Array.sub y 0 n)
    | `Kasdin ->
      Some (Ptrng_noise.Kasdin.flicker_fm_block ?domains rng ~hm1 ~fs:cfg.f0 n)
    | `Voss ->
      (* Per-source sigma inverts Voss.level_hm1 (= sigma^2 / ln 2);
         octaves are chosen so the slowest source spans the block. *)
      let sigma = sqrt (hm1 *. log 2.0) in
      let octaves =
        let rec count o span = if span >= n || o >= 40 then o else count (o + 1) (span * 2) in
        count 1 1
      in
      let v = Ptrng_noise.Voss.create rng ~octaves in
      Some (Array.map (fun s -> sigma *. s) (Ptrng_noise.Voss.generate v n))

let periods ?domains rng cfg ~n =
  if n <= 0 then invalid_arg "Oscillator.periods: n <= 0";
  let t0 = 1.0 /. cfg.f0 in
  let sigma_th = thermal_sigma cfg in
  let out =
    if sigma_th > 0.0 then
      (* Thermal jitter is white: chunked child streams, so the trace
         is bit-identical for every domain count. *)
      Ptrng_exec.Pool.parallel_init_floats ?domains ~rng
        ~fill:(fun child ~offset ~len out ->
          let g = Ptrng_prng.Gaussian.create child in
          for k = offset to offset + len - 1 do
            out.(k) <- t0 +. (sigma_th *. Ptrng_prng.Gaussian.draw g)
          done)
        n
    else Array.make n t0
  in
  (match flicker_samples ?domains rng cfg n with
  | None -> ()
  | Some y ->
    for k = 0 to n - 1 do
      out.(k) <- out.(k) +. (t0 *. y.(k))
    done);
  if cfg.rw_hm2 > 0.0 then begin
    (* Random-walk FM (aging): y integrates white steps whose variance
       follows from the one-sided level, sigma_w^2 = 2 pi^2 h_{-2}/fs
       (exact in the time domain, no circularity). *)
    let g = Ptrng_prng.Gaussian.create rng in
    let sigma_w = sqrt (2.0 *. Float.pi *. Float.pi *. cfg.rw_hm2 /. cfg.f0) in
    let y = ref 0.0 in
    for k = 0 to n - 1 do
      y := !y +. (sigma_w *. Ptrng_prng.Gaussian.draw g);
      out.(k) <- out.(k) +. (t0 *. !y)
    done
  end;
  out

let edges_of_periods ?(t0 = 0.0) periods =
  let n = Array.length periods in
  let edges = Array.make (n + 1) t0 in
  for k = 0 to n - 1 do
    edges.(k + 1) <- edges.(k) +. periods.(k)
  done;
  edges

let jitter_of_periods ~f0 periods =
  if f0 <= 0.0 then invalid_arg "Oscillator.jitter_of_periods: f0 <= 0";
  let t0 = 1.0 /. f0 in
  Array.map (fun t -> t -. t0) periods

let excess_phase ~f0 periods =
  if f0 <= 0.0 then invalid_arg "Oscillator.excess_phase: f0 <= 0";
  let t0 = 1.0 /. f0 in
  let n = Array.length periods in
  let phi = Array.make n 0.0 in
  let time_error = ref 0.0 in
  for k = 0 to n - 1 do
    time_error := !time_error +. (periods.(k) -. t0);
    phi.(k) <- -2.0 *. Float.pi *. f0 *. !time_error
  done;
  phi
