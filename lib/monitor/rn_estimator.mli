(** Streaming estimate of the live independence ratio r_N.

    The batch pipeline measures the variance curve sigma_N^2 over a
    recorded trace ({!Ptrng_measure.S_process} /
    {!Ptrng_measure.Variance_curve}), fits
    [f0^2 sigma_N^2 = a N + b N^2] and reads the thermal fraction
    [r_N = a N / (a N + b N^2) = k / (k + N)] with [k = a/b] — the
    paper's 5354.  This module is the streaming form: feed per-period
    relative jitter as it is produced and keep, per grid length N, a
    sliding window of S_N realizations built exactly like the batch
    statistic (second difference over 2N consecutive periods, disjoint
    realizations), so the live fit is directly comparable to the batch
    one and to the closed form.

    A realization at accumulation length N consumes 2N samples, so the
    largest grid entry dominates the warm-up time: with the default
    grid and window, the estimate is ready after roughly
    [2 * max ns * realizations] fed periods. *)

type t
(** One streaming estimator. *)

val create :
  ?ns:int array -> ?realizations:int -> ?min_realizations:int ->
  f0:float -> unit -> t
(** [ns] (default [[|16; 64; 256; 1024|]]) is the accumulation-length
    grid; [realizations] (default 128) the per-N sliding-window
    capacity; [min_realizations] (default 16) how many realizations an
    N needs before its point enters the fit.
    @raise Invalid_argument if the grid is empty or non-increasing, if
    any N is non-positive, if [f0 <= 0], or unless
    [2 <= min_realizations <= realizations]. *)

val feed : t -> float -> unit
(** Feed one per-period relative jitter sample (seconds).  Non-finite
    samples are dropped. *)

val feed_many : t -> Float.Array.t -> len:int -> unit
(** [feed_many t buf ~len] feeds [buf.(0 .. len-1)] — the allocation-free
    chunk entry point for streamed pipelines ({!Ptrng_osc.Pair.fill}
    into a reused buffer, then here).
    @raise Invalid_argument if [len] exceeds the buffer. *)

val samples : t -> int
(** Jitter samples fed so far. *)

val points : t -> Ptrng_measure.Variance_curve.point array
(** Current sliding-window variance-curve points, one per grid N with
    at least [min_realizations] realizations ([neff] = realizations in
    the window, [stderr] as in the batch estimator). *)

type estimate = {
  fit : Ptrng_measure.Fit.t;     (** Weighted fit over {!points}. *)
  k : float;                     (** [a/b]; [infinity] when no flicker
                                     is resolvable ([b <= 0]). *)
  threshold_n : int;             (** Largest N with
                                     [r_n >= confidence] at the fitted
                                     k; [max_int] when [k] is
                                     infinite. *)
}
(** One live fit of the independence regime. *)

val estimate : ?confidence:float -> t -> estimate option
(** Fit the current points ([confidence] default 0.95).  [None] until
    every grid length (and at least 3) is ready, or while the fitted
    thermal coefficient is non-positive — flicker is pinned by the
    largest N, so a small-N prefix alone supports no regime
    statement. *)

val r_of_fit : Ptrng_measure.Fit.t -> int -> float
(** Thermal fraction [a N / (a N + b N^2)] of a fitted curve at
    accumulation length N, clamped to [0, 1] — equals the closed form
    [k/(k+N)] of {!Ptrng_measure.Thermal_extract.r_n}. *)

val r_n : t -> int -> float option
(** Live [r_N] at accumulation length [n]; [None] while {!estimate}
    is. *)
