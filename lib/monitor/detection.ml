(* The scorer is a pure observer: the scenario runner feeds it one
   monitor snapshot per chunk and it keeps the deltas needed to
   attribute the first post-onset alarm to a detector, count pre-onset
   false alarms, time the verdict's recovery, and track the silent-lie
   margins against the stale static claims. *)

type alarm = {
  detector : string;
  at_period : int;
  at_bit : int;
  at_window : int;
  latency_periods : int;
  latency_bits : int;
  latency_windows : int;
}

type recovery = { at_period : int; at_window : int }

type t = {
  onset_period : int option;
  static_r : float;
  static_entropy : float;
  mutable observations : int;
  mutable pre_alarms : int;
  mutable pre_nonok : int;
  mutable onset_bit : int;
  mutable onset_window : int;
  mutable onset_seen : bool;
  mutable detected : alarm option;
  mutable recovered : recovery option;
  mutable lie_r : float;
  mutable lie_entropy : float;
  mutable last_status : Verdict.status;
  mutable live_r : float;
  mutable live_entropy : float;
  mutable prev_rct : int;
  mutable prev_apt : int;
  mutable prev_ais31 : int;
  mutable prev_ewma : bool;
  mutable prev_cusum : bool;
}

let create ?onset_period ?(static_r = nan) ?(static_entropy = nan) () =
  (match onset_period with
  | Some o when o < 0 -> invalid_arg "Detection.create: onset_period < 0"
  | _ -> ());
  {
    onset_period;
    static_r;
    static_entropy;
    observations = 0;
    pre_alarms = 0;
    pre_nonok = 0;
    onset_bit = 0;
    onset_window = 0;
    onset_seen = false;
    detected = None;
    recovered = None;
    lie_r = 0.0;
    lie_entropy = 0.0;
    last_status = Verdict.Ok;
    live_r = nan;
    live_entropy = nan;
    prev_rct = 0;
    prev_apt = 0;
    prev_ais31 = 0;
    prev_ewma = false;
    prev_cusum = false;
  }

let has_reason (v : Verdict.t) code =
  List.exists (fun (r : Verdict.reason) -> r.Verdict.code = code) v.reasons

(* Attribution order, checked at the first alarming observation: the
   raw per-bit tests fire inside the window the charts only see at its
   close, and the model-level independence verdict is the slowest
   consumer of all — so raw tests, then charts, then model reasons. *)
let first_detector t (s : Monitor.snapshot) =
  if s.rct_alarms > t.prev_rct then Some "rct"
  else if s.apt_alarms > t.prev_apt then Some "apt"
  else if s.ais31_alarms > t.prev_ais31 then Some "ais31"
  else if s.ewma_crossed && not t.prev_ewma then Some "ewma"
  else if s.cusum_crossed && not t.prev_cusum then Some "cusum"
  else if s.verdict.status <> Verdict.Ok && has_reason s.verdict "independence"
  then Some "independence"
  else if
    s.verdict.status <> Verdict.Ok
    && (has_reason s.verdict "min-entropy-collapse"
       || has_reason s.verdict "min-entropy")
  then Some "min-entropy"
  else None

let observe t ?(live_entropy = nan) (s : Monitor.snapshot) =
  t.observations <- t.observations + 1;
  t.last_status <- s.verdict.status;
  if Float.is_finite s.r_judge then t.live_r <- s.r_judge;
  if Float.is_finite live_entropy then t.live_entropy <- live_entropy;
  let tests = s.rct_alarms + s.apt_alarms + s.ais31_alarms in
  let pre =
    match t.onset_period with None -> true | Some o -> s.periods <= o
  in
  if pre then begin
    t.pre_alarms <- tests;
    if s.verdict.status <> Verdict.Ok then t.pre_nonok <- t.pre_nonok + 1;
    t.onset_bit <- s.bits;
    t.onset_window <- s.windows
  end
  else begin
    if not t.onset_seen then t.onset_seen <- true;
    (match (t.detected, t.onset_period) with
    | None, Some onset -> (
      match first_detector t s with
      | Some detector ->
        t.detected <-
          Some
            {
              detector;
              at_period = s.periods;
              at_bit = s.bits;
              at_window = s.windows;
              latency_periods = s.periods - onset;
              latency_bits = s.bits - t.onset_bit;
              latency_windows = s.windows - t.onset_window;
            }
      | None -> ())
    | _ -> ());
    (* Recovery is the start of the terminal ok streak: a later non-ok
       snapshot clears it, so a persistent fault whose verdict merely
       flaps through ok is not scored as recovered. *)
    (match t.detected with
    | Some _ ->
      if s.verdict.status = Verdict.Ok then begin
        if t.recovered = None then
          t.recovered <- Some { at_period = s.periods; at_window = s.windows }
      end
      else t.recovered <- None
    | None -> ());
    if Float.is_finite t.static_r && Float.is_finite s.r_judge then
      t.lie_r <- Float.max t.lie_r (t.static_r -. s.r_judge);
    if Float.is_finite t.static_entropy && Float.is_finite live_entropy then
      t.lie_entropy <- Float.max t.lie_entropy (t.static_entropy -. live_entropy)
  end;
  t.prev_rct <- s.rct_alarms;
  t.prev_apt <- s.apt_alarms;
  t.prev_ais31 <- s.ais31_alarms;
  t.prev_ewma <- s.ewma_crossed;
  t.prev_cusum <- s.cusum_crossed

type summary = {
  onset_period : int option;
  observations : int;
  false_alarms : int;
  pre_onset_nonok : int;
  detected : alarm option;
  recovered : recovery option;
  static_r : float;
  static_entropy : float;
  live_r : float;
  live_entropy : float;
  lie_margin_r : float;
  lie_margin_entropy : float;
  final_status : Verdict.status;
}

let summary (t : t) : summary =
  {
    onset_period = t.onset_period;
    observations = t.observations;
    false_alarms = t.pre_alarms;
    pre_onset_nonok = t.pre_nonok;
    detected = t.detected;
    recovered = t.recovered;
    static_r = t.static_r;
    static_entropy = t.static_entropy;
    live_r = t.live_r;
    live_entropy = t.live_entropy;
    lie_margin_r = t.lie_r;
    lie_margin_entropy = t.lie_entropy;
    final_status = t.last_status;
  }
