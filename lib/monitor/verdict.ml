module Json = Ptrng_telemetry.Json

type status = Ok | Degraded | Failing

type reason = { code : string; detail : string }

type t = { status : status; reasons : reason list }

let ok = { status = Ok; reasons = [] }

let make reasons ~failing =
  match reasons with
  | [] -> ok
  | rs ->
    let status = if List.exists failing rs then Failing else Degraded in
    { status; reasons = rs }

let status_string (s : status) =
  match s with Ok -> "ok" | Degraded -> "degraded" | Failing -> "failing"

let status_of_string s : status option =
  match s with
  | "ok" -> Some Ok
  | "degraded" -> Some Degraded
  | "failing" -> Some Failing
  | _ -> None

let severity (s : status) =
  match s with Ok -> 0 | Degraded -> 1 | Failing -> 2

let to_json t =
  Json.Obj
    [
      ("status", Json.String (status_string t.status));
      ( "reasons",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("code", Json.String r.code);
                   ("detail", Json.String r.detail);
                 ])
             t.reasons) );
    ]

let of_json j =
  match Json.member "status" j with
  | Some (Json.String s) -> (
    match status_of_string s with
    | None -> None
    | Some status ->
      let reasons =
        match Json.member "reasons" j with
        | Some (Json.List rs) ->
          List.filter_map
            (fun r ->
              match (Json.member "code" r, Json.member "detail" r) with
              | Some (Json.String code), Some (Json.String detail) ->
                Some { code; detail }
              | _ -> None)
            rs
        | _ -> []
      in
      Some { status; reasons })
  | _ -> None
