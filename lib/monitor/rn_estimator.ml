(* Per grid length N we rebuild the batch statistic incrementally: the
   S_N realization is the second difference of the cumulative jitter
   over 2N consecutive periods (S_process.realizations with stride
   2N), i.e. (sum of the second N periods) - (sum of the first N).
   Disjoint realizations land in a sliding Window per N. *)

type slot = {
  n : int;
  mutable acc : float;      (* partial sum of the current half *)
  mutable filled : int;     (* samples in the current half, 0..n *)
  mutable first_half : float; (* completed first-half sum, nan = none *)
  window : Window.t;
}

type t = {
  f0 : float;
  slots : slot array;
  min_realizations : int;
  mutable samples : int;
}

let default_ns = [| 16; 64; 256; 1024 |]

let create ?(ns = default_ns) ?(realizations = 128) ?(min_realizations = 16)
    ~f0 () =
  if Array.length ns = 0 then invalid_arg "Rn_estimator.create: empty grid";
  Array.iteri
    (fun i n ->
      if n <= 0 then invalid_arg "Rn_estimator.create: non-positive N";
      if i > 0 && n <= ns.(i - 1) then
        invalid_arg "Rn_estimator.create: grid not increasing")
    ns;
  if f0 <= 0.0 then invalid_arg "Rn_estimator.create: f0 <= 0";
  if min_realizations < 2 || min_realizations > realizations then
    invalid_arg "Rn_estimator.create: bad min_realizations";
  {
    f0;
    slots =
      Array.map
        (fun n ->
          { n; acc = 0.0; filled = 0; first_half = nan;
            window = Window.create ~capacity:realizations })
        ns;
    min_realizations;
    samples = 0;
  }

let feed t x =
  if Float.is_finite x then begin
    t.samples <- t.samples + 1;
    Array.iter
      (fun s ->
        s.acc <- s.acc +. x;
        s.filled <- s.filled + 1;
        if s.filled = s.n then begin
          if Float.is_nan s.first_half then s.first_half <- s.acc
          else begin
            Window.push s.window (s.acc -. s.first_half);
            s.first_half <- nan
          end;
          s.acc <- 0.0;
          s.filled <- 0
        end)
      t.slots
  end

let samples t = t.samples

let points t =
  let pts = ref [] in
  Array.iter
    (fun s ->
      let neff = Window.count s.window in
      if neff >= t.min_realizations then begin
        let sigma2 = Window.variance s.window in
        let stderr =
          Ptrng_stats.Descriptive.standard_error_of_variance ~n:neff
            ~variance:sigma2
        in
        pts :=
          { Ptrng_measure.Variance_curve.n = s.n; sigma2;
            scaled = sigma2 *. t.f0 *. t.f0; neff; stderr }
          :: !pts
      end)
    t.slots;
  Array.of_list (List.rev !pts)

type estimate = {
  fit : Ptrng_measure.Fit.t;
  k : float;
  threshold_n : int;
}

let r_of_fit (fit : Ptrng_measure.Fit.t) n =
  let fn = float_of_int n in
  let thermal = fit.a *. fn in
  let total = thermal +. (fit.b *. fn *. fn) in
  if total <= 0.0 then 1.0
  else Float.min 1.0 (Float.max 0.0 (thermal /. total))

(* Every grid length must be ready: the flicker coefficient is pinned
   by the largest N, and a fit over the small-N prefix alone would
   report a wildly noisy (even negative) b during warm-up. *)
let estimate ?(confidence = 0.95) t =
  let pts = points t in
  if Array.length pts < Array.length t.slots || Array.length pts < 3 then None
  else begin
    let fit = Ptrng_measure.Fit.fit ~f0:t.f0 pts in
    if not (fit.a > 0.0) then None
    else begin
      let k = if fit.b > 0.0 then fit.a /. fit.b else infinity in
      let threshold_n =
        if Float.is_finite k then
          (* Largest N with k/(k+N) >= c, i.e. N <= k (1-c)/c. *)
          int_of_float (Float.floor (k *. (1.0 -. confidence) /. confidence))
        else max_int
      in
      Some { fit; k; threshold_n }
    end
  end

let r_n t n = Option.map (fun e -> r_of_fit e.fit n) (estimate t)
