(* Per grid length N we rebuild the batch statistic incrementally: the
   S_N realization is the second difference of the cumulative jitter
   over 2N consecutive periods (S_process.realizations with stride
   2N), i.e. (sum of the second N periods) - (sum of the first N).
   Disjoint realizations land in a sliding Window per N.

   The per-slot state is struct-of-arrays — partial sums and completed
   first halves live in floatarrays, not in mutable float record fields
   — so the per-sample hot loop mutates unboxed cells and allocates
   nothing. *)

module FA = Float.Array

type t = {
  f0 : float;
  ns : int array;
  accs : FA.t;        (* partial sum of the current half, per slot *)
  filled : int array; (* samples in the current half, 0..n *)
  first_half : FA.t;  (* completed first-half sum; nan = none *)
  windows : Window.t array;
  min_realizations : int;
  mutable samples : int;
}

let default_ns = [| 16; 64; 256; 1024 |]

let create ?(ns = default_ns) ?(realizations = 128) ?(min_realizations = 16)
    ~f0 () =
  if Array.length ns = 0 then invalid_arg "Rn_estimator.create: empty grid";
  Array.iteri
    (fun i n ->
      if n <= 0 then invalid_arg "Rn_estimator.create: non-positive N";
      if i > 0 && n <= ns.(i - 1) then
        invalid_arg "Rn_estimator.create: grid not increasing")
    ns;
  if f0 <= 0.0 then invalid_arg "Rn_estimator.create: f0 <= 0";
  if min_realizations < 2 || min_realizations > realizations then
    invalid_arg "Rn_estimator.create: bad min_realizations";
  let k = Array.length ns in
  {
    f0;
    ns = Array.copy ns;
    accs = FA.make k 0.0;
    filled = Array.make k 0;
    first_half = FA.make k nan;
    windows =
      Array.init k (fun _ -> Window.create ~capacity:realizations);
    min_realizations;
    samples = 0;
  }

(* The unboxed per-sample update for slot [s]. *)
let feed_slot t s x =
  let acc = FA.unsafe_get t.accs s +. x in
  let filled = Array.unsafe_get t.filled s + 1 in
  if filled = Array.unsafe_get t.ns s then begin
    let first = FA.unsafe_get t.first_half s in
    if Float.is_nan first then FA.unsafe_set t.first_half s acc
    else begin
      Window.push (Array.unsafe_get t.windows s) (acc -. first);
      FA.unsafe_set t.first_half s nan
    end;
    FA.unsafe_set t.accs s 0.0;
    Array.unsafe_set t.filled s 0
  end
  else begin
    FA.unsafe_set t.accs s acc;
    Array.unsafe_set t.filled s filled
  end

let feed t x =
  if Float.is_finite x then begin
    t.samples <- t.samples + 1;
    for s = 0 to Array.length t.ns - 1 do
      feed_slot t s x
    done
  end

(* The slot update of [feed_slot], spelled out inline: a call would box
   the sample once per slot per sample on the classic compiler, and
   this is the live monitor's streaming hot loop. *)
let feed_many t buf ~len =
  if len < 0 || len > FA.length buf then
    invalid_arg "Rn_estimator.feed_many: bad len";
  let k = Array.length t.ns in
  let accs = t.accs and filled = t.filled and first_half = t.first_half in
  let ns = t.ns and windows = t.windows in
  for i = 0 to len - 1 do
    let x = FA.unsafe_get buf i in
    if Float.is_finite x then begin
      t.samples <- t.samples + 1;
      for s = 0 to k - 1 do
        let acc = FA.unsafe_get accs s +. x in
        let fl = Array.unsafe_get filled s + 1 in
        if fl = Array.unsafe_get ns s then begin
          let first = FA.unsafe_get first_half s in
          if Float.is_nan first then FA.unsafe_set first_half s acc
          else begin
            Window.push (Array.unsafe_get windows s) (acc -. first);
            FA.unsafe_set first_half s nan
          end;
          FA.unsafe_set accs s 0.0;
          Array.unsafe_set filled s 0
        end
        else begin
          FA.unsafe_set accs s acc;
          Array.unsafe_set filled s fl
        end
      done
    end
  done

let samples t = t.samples

let points t =
  let pts = ref [] in
  for s = Array.length t.ns - 1 downto 0 do
    let w = t.windows.(s) in
    let neff = Window.count w in
    if neff >= t.min_realizations then begin
      let sigma2 = Window.variance w in
      let stderr =
        Ptrng_stats.Descriptive.standard_error_of_variance ~n:neff
          ~variance:sigma2
      in
      pts :=
        { Ptrng_measure.Variance_curve.n = t.ns.(s); sigma2;
          scaled = sigma2 *. t.f0 *. t.f0; neff; stderr }
        :: !pts
    end
  done;
  Array.of_list !pts

type estimate = {
  fit : Ptrng_measure.Fit.t;
  k : float;
  threshold_n : int;
}

let r_of_fit (fit : Ptrng_measure.Fit.t) n =
  let fn = float_of_int n in
  let thermal = fit.a *. fn in
  let total = thermal +. (fit.b *. fn *. fn) in
  if total <= 0.0 then 1.0
  else Float.min 1.0 (Float.max 0.0 (thermal /. total))

(* Every grid length must be ready: the flicker coefficient is pinned
   by the largest N, and a fit over the small-N prefix alone would
   report a wildly noisy (even negative) b during warm-up. *)
let estimate ?(confidence = 0.95) t =
  let pts = points t in
  if Array.length pts < Array.length t.ns || Array.length pts < 3 then None
  else begin
    let fit = Ptrng_measure.Fit.fit ~f0:t.f0 pts in
    if not (fit.a > 0.0) then None
    else begin
      let k = if fit.b > 0.0 then fit.a /. fit.b else infinity in
      let threshold_n =
        if Float.is_finite k then
          (* Largest N with k/(k+N) >= c, i.e. N <= k (1-c)/c. *)
          int_of_float (Float.floor (k *. (1.0 -. confidence) /. confidence))
        else max_int
      in
      Some { fit; k; threshold_n }
    end
  end

let r_n t n = Option.map (fun e -> r_of_fit e.fit n) (estimate t)
