(** Health verdicts of the live observatory.

    Three-level semantics, aggregated from independent reasons:
    [Ok] — every watched statistic is inside its regime; [Degraded] —
    at least one statistic left its regime (independence ratio under
    the confidence threshold, a control chart alarming, a low windowed
    min-entropy); [Failing] — the entropy claim itself is untenable
    (min-entropy collapse, or both control charts alarming at once).
    See docs/MONITORING.md for the exact rules. *)

type status = Ok | Degraded | Failing
(** Severity-ordered health levels. *)

type reason = {
  code : string;    (** Stable machine key, e.g. ["independence"]. *)
  detail : string;  (** Human explanation with the offending values. *)
}
(** One cause contributing to a non-[Ok] verdict. *)

type t = {
  status : status;
  reasons : reason list;  (** Empty exactly when [status = Ok]. *)
}
(** A verdict with its supporting reasons. *)

val ok : t
(** The all-clear verdict. *)

val make : reason list -> failing:(reason -> bool) -> t
(** Aggregate: no reasons is [Ok]; otherwise [Failing] when any reason
    satisfies [failing], else [Degraded]. *)

val status_string : status -> string
(** ["ok"], ["degraded"] or ["failing"] — the wire spelling used by
    the [/health] endpoint. *)

val status_of_string : string -> status option
(** Inverse of {!status_string}. *)

val severity : status -> int
(** 0, 1, 2 in severity order — the value of the
    [ptrng_monitor_verdict] gauge. *)

val to_json : t -> Ptrng_telemetry.Json.t
(** [{"status": ..., "reasons": [{"code":..., "detail":...}, ...]}]. *)

val of_json : Ptrng_telemetry.Json.t -> t option
(** Parse {!to_json} output (round-trip for the [/health] client). *)
