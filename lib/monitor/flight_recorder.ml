module T = Ptrng_telemetry
module FA = Float.Array

type config = {
  jitter_capacity : int;
  bit_capacity : int;
  window_capacity : int;
  post_windows : int;
  max_incidents : int;
}

let default_config =
  {
    jitter_capacity = 8192;
    bit_capacity = 2048;
    window_capacity = 64;
    post_windows = 4;
    max_incidents = 8;
  }

type provenance = {
  kind : string;
  workload : string;
  seed : int;
  divisor : int;
  chunk : int;
  flicker_block : int;
}

type incident = {
  id : int;
  direction : string;
  severity_from : int;
  severity_to : int;
  at_period : int;
  at_bit : int;
  at_window : int;
  reasons : (string * string) list;
  jitter_start : int;
  jitter : float array;
  bit_start : int;
  bits : string;
  window_start : int;
  iw_index : int array;
  iw_alarms : int array;
  iw_severity : int array;
  iw_entropy : float array;
  iw_ewma : float array;
  iw_cusum : float array;
  iw_r : float array;
  itr_window : int array;
  itr_period : int array;
  itr_bit : int array;
  itr_from : int array;
  itr_to : int array;
}

(* All rings share the same discipline as Window: [head] is the next
   write slot, [total] the absolute number of values ever pushed, so
   head = total mod capacity and the oldest retained value sits at
   absolute position total - min(total, capacity).  Struct-of-arrays
   for the window rows keeps every push a plain scalar store. *)
type t = {
  cfg : config;
  prov : provenance;
  mutable mon_cfg : T.Json.t;
  jr : FA.t;
  mutable j_total : int;
  br : Bytes.t;
  mutable b_total : int;
  w_index : int array;
  w_alarms : int array;
  w_severity : int array;
  w_entropy : FA.t;
  w_ewma : FA.t;
  w_cusum : FA.t;
  w_r : FA.t;
  mutable w_total : int;
  tr_window : int array;
  tr_period : int array;
  tr_bit : int array;
  tr_from : int array;
  tr_to : int array;
  mutable tr_total : int;
  mutable armed : bool;
  mutable countdown : int;
  mutable trig_direction : string;
  mutable trig_from : int;
  mutable trig_to : int;
  mutable trig_period : int;
  mutable trig_bit : int;
  mutable trig_window : int;
  mutable trig_reasons : (string * string) list;
  mutable frozen : incident list; (* newest first *)
  mutable n_frozen : int;
}

let create ?(config = default_config) ~provenance () =
  if config.jitter_capacity < 1 then
    invalid_arg "Flight_recorder.create: jitter_capacity < 1";
  if config.bit_capacity < 1 then
    invalid_arg "Flight_recorder.create: bit_capacity < 1";
  if config.window_capacity < 1 then
    invalid_arg "Flight_recorder.create: window_capacity < 1";
  if config.post_windows < 0 then
    invalid_arg "Flight_recorder.create: post_windows < 0";
  if config.max_incidents < 1 then
    invalid_arg "Flight_recorder.create: max_incidents < 1";
  {
    cfg = config;
    prov = provenance;
    mon_cfg = T.Json.Null;
    jr = FA.make config.jitter_capacity 0.0;
    j_total = 0;
    br = Bytes.make config.bit_capacity '0';
    b_total = 0;
    w_index = Array.make config.window_capacity 0;
    w_alarms = Array.make config.window_capacity 0;
    w_severity = Array.make config.window_capacity 0;
    w_entropy = FA.make config.window_capacity 0.0;
    w_ewma = FA.make config.window_capacity 0.0;
    w_cusum = FA.make config.window_capacity 0.0;
    w_r = FA.make config.window_capacity 0.0;
    w_total = 0;
    tr_window = Array.make config.window_capacity 0;
    tr_period = Array.make config.window_capacity 0;
    tr_bit = Array.make config.window_capacity 0;
    tr_from = Array.make config.window_capacity 0;
    tr_to = Array.make config.window_capacity 0;
    tr_total = 0;
    armed = false;
    countdown = 0;
    trig_direction = "";
    trig_from = 0;
    trig_to = 0;
    trig_period = 0;
    trig_bit = 0;
    trig_window = 0;
    trig_reasons = [];
    frozen = [];
    n_frozen = 0;
  }

let config t = t.cfg
let provenance t = t.prov
let set_monitor_config t j = t.mon_cfg <- j

let record_jitter t x =
  FA.unsafe_set t.jr (t.j_total mod t.cfg.jitter_capacity) x;
  t.j_total <- t.j_total + 1

let record_jitter_chunk t buf ~len =
  if len < 0 || len > FA.length buf then
    invalid_arg "Flight_recorder.record_jitter_chunk: len";
  let cap = t.cfg.jitter_capacity in
  for i = 0 to len - 1 do
    FA.unsafe_set t.jr ((t.j_total + i) mod cap) (FA.unsafe_get buf i)
  done;
  t.j_total <- t.j_total + len

let record_bit t b =
  Bytes.unsafe_set t.br
    (t.b_total mod t.cfg.bit_capacity)
    (if b then '1' else '0');
  t.b_total <- t.b_total + 1

let record_window t ~index ~alarms ~min_entropy ~ewma ~cusum_pos ~r_n ~severity
    =
  let slot = t.w_total mod t.cfg.window_capacity in
  t.w_index.(slot) <- index;
  t.w_alarms.(slot) <- alarms;
  t.w_severity.(slot) <- severity;
  FA.unsafe_set t.w_entropy slot min_entropy;
  FA.unsafe_set t.w_ewma slot ewma;
  FA.unsafe_set t.w_cusum slot cusum_pos;
  FA.unsafe_set t.w_r slot r_n;
  t.w_total <- t.w_total + 1

let record_transition t ~at_window ~at_period ~at_bit ~severity_from
    ~severity_to =
  let slot = t.tr_total mod t.cfg.window_capacity in
  t.tr_window.(slot) <- at_window;
  t.tr_period.(slot) <- at_period;
  t.tr_bit.(slot) <- at_bit;
  t.tr_from.(slot) <- severity_from;
  t.tr_to.(slot) <- severity_to;
  t.tr_total <- t.tr_total + 1

(* Ring unwrapping (freeze-time only — allocation is fine here). *)

let start_of total cap = total - min total cap

let fa_ring fa total cap =
  let count = min total cap in
  let base = start_of total cap in
  Array.init count (fun i -> FA.get fa ((base + i) mod cap))

let int_ring a total cap =
  let count = min total cap in
  let base = start_of total cap in
  Array.init count (fun i -> a.((base + i) mod cap))

let freeze t =
  let cfg = t.cfg in
  let inc =
    {
      id = t.n_frozen;
      direction = t.trig_direction;
      severity_from = t.trig_from;
      severity_to = t.trig_to;
      at_period = t.trig_period;
      at_bit = t.trig_bit;
      at_window = t.trig_window;
      reasons = t.trig_reasons;
      jitter_start = start_of t.j_total cfg.jitter_capacity;
      jitter = fa_ring t.jr t.j_total cfg.jitter_capacity;
      bit_start = start_of t.b_total cfg.bit_capacity;
      bits =
        (let count = min t.b_total cfg.bit_capacity in
         let base = start_of t.b_total cfg.bit_capacity in
         String.init count (fun i ->
             Bytes.get t.br ((base + i) mod cfg.bit_capacity)));
      window_start = start_of t.w_total cfg.window_capacity;
      iw_index = int_ring t.w_index t.w_total cfg.window_capacity;
      iw_alarms = int_ring t.w_alarms t.w_total cfg.window_capacity;
      iw_severity = int_ring t.w_severity t.w_total cfg.window_capacity;
      iw_entropy = fa_ring t.w_entropy t.w_total cfg.window_capacity;
      iw_ewma = fa_ring t.w_ewma t.w_total cfg.window_capacity;
      iw_cusum = fa_ring t.w_cusum t.w_total cfg.window_capacity;
      iw_r = fa_ring t.w_r t.w_total cfg.window_capacity;
      itr_window = int_ring t.tr_window t.tr_total cfg.window_capacity;
      itr_period = int_ring t.tr_period t.tr_total cfg.window_capacity;
      itr_bit = int_ring t.tr_bit t.tr_total cfg.window_capacity;
      itr_from = int_ring t.tr_from t.tr_total cfg.window_capacity;
      itr_to = int_ring t.tr_to t.tr_total cfg.window_capacity;
    }
  in
  t.frozen <- inc :: t.frozen;
  t.n_frozen <- t.n_frozen + 1;
  t.armed <- false;
  T.Mark.emit "incident.freeze"
    ~args:
      [
        ("id", T.Json.Int inc.id);
        ("direction", T.Json.String inc.direction);
        ("at_window", T.Json.Int inc.at_window);
      ];
  T.Event_log.emit ~kind:"incident"
    [
      ("what", T.Json.String "freeze");
      ("id", T.Json.Int inc.id);
      ("direction", T.Json.String inc.direction);
      ("at_period", T.Json.Int inc.at_period);
      ("at_window", T.Json.Int inc.at_window);
    ]

let note_trigger t ~direction ~severity_from ~severity_to ~at_period ~at_bit
    ~at_window ~reasons =
  if (not t.armed) && t.n_frozen < t.cfg.max_incidents then begin
    t.trig_direction <- direction;
    t.trig_from <- severity_from;
    t.trig_to <- severity_to;
    t.trig_period <- at_period;
    t.trig_bit <- at_bit;
    t.trig_window <- at_window;
    t.trig_reasons <- reasons;
    if t.cfg.post_windows = 0 then freeze t
    else begin
      t.armed <- true;
      t.countdown <- t.cfg.post_windows
    end
  end

let tick_window t =
  if t.armed then begin
    t.countdown <- t.countdown - 1;
    if t.countdown <= 0 then freeze t
  end

let incident_count t = t.n_frozen
let incidents t = List.rev t.frozen
let incident t id = List.find_opt (fun i -> i.id = id) t.frozen
let incident_id i = i.id
let incident_trigger i = (i.direction, i.severity_from, i.severity_to)
let incident_reasons i = i.reasons

let config_json cfg =
  let open T.Json in
  Obj
    [
      ("jitter_capacity", Int cfg.jitter_capacity);
      ("bit_capacity", Int cfg.bit_capacity);
      ("window_capacity", Int cfg.window_capacity);
      ("post_windows", Int cfg.post_windows);
      ("max_incidents", Int cfg.max_incidents);
    ]

let provenance_json p =
  let open T.Json in
  Obj
    [
      ("kind", String p.kind);
      ("workload", String p.workload);
      ("seed", Int p.seed);
      ("divisor", Int p.divisor);
      ("chunk", Int p.chunk);
      ("flicker_block", Int p.flicker_block);
    ]

let trigger_json inc =
  let open T.Json in
  Obj
    [
      ("direction", String inc.direction);
      ("severity_from", Int inc.severity_from);
      ("severity_to", Int inc.severity_to);
      ("at_period", Int inc.at_period);
      ("at_bit", Int inc.at_bit);
      ("at_window", Int inc.at_window);
      ( "reasons",
        List
          (List.map
             (fun (code, detail) ->
               Obj [ ("code", String code); ("detail", String detail) ])
             inc.reasons) );
    ]

let incident_json t inc =
  let open T.Json in
  let window_rows =
    List.init (Array.length inc.iw_index) (fun i ->
        Obj
          [
            ("index", Int inc.iw_index.(i));
            ("alarms", Int inc.iw_alarms.(i));
            ("min_entropy", num inc.iw_entropy.(i));
            ("ewma", num inc.iw_ewma.(i));
            ("cusum_pos", num inc.iw_cusum.(i));
            ("r_n", num inc.iw_r.(i));
            ("severity", Int inc.iw_severity.(i));
          ])
  in
  let transition_rows =
    List.init (Array.length inc.itr_window) (fun i ->
        Obj
          [
            ("window", Int inc.itr_window.(i));
            ("at_period", Int inc.itr_period.(i));
            ("at_bit", Int inc.itr_bit.(i));
            ("from", Int inc.itr_from.(i));
            ("to", Int inc.itr_to.(i));
          ])
  in
  Obj
    [
      ("schema", String "ptrng-incident/1");
      ("id", Int inc.id);
      ("trigger", trigger_json inc);
      ("provenance", provenance_json t.prov);
      ("monitor_config", t.mon_cfg);
      ("recorder", config_json t.cfg);
      ( "capture",
        Obj
          [
            ("jitter_start", Int inc.jitter_start);
            ("jitter", List (Array.to_list (Array.map num inc.jitter)));
            ("bit_start", Int inc.bit_start);
            ("bits", String inc.bits);
            ("window_start", Int inc.window_start);
            ("windows", List window_rows);
            ("transitions", List transition_rows);
          ] );
    ]

let summary_json t inc =
  let open T.Json in
  Obj
    [
      ("schema", String "ptrng-incident-summary/1");
      ("id", Int inc.id);
      ("trigger", trigger_json inc);
      ("workload", String t.prov.workload);
      ("kind", String t.prov.kind);
      ("jitter_start", Int inc.jitter_start);
      ("jitter_samples", Int (Array.length inc.jitter));
      ("bit_start", Int inc.bit_start);
      ("bits", Int (String.length inc.bits));
      ("windows", Int (Array.length inc.iw_index));
      ("transitions", Int (Array.length inc.itr_window));
    ]
