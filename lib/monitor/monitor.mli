(** The live entropy-health observatory.

    One [t] consumes the two streams a running P-TRNG produces — raw
    period jitter samples and sampled output bits — and maintains,
    incrementally:

    - a sliding-window variance curve per accumulation length N, refit
      periodically to the paper's [f0^2 sigma_N^2 = aN + bN^2] model,
      giving a {e live} independence ratio [r_N = k/(k+N)] with
      [k = a/b] and a verdict against the configured confidence
      threshold (the paper's demonstrator: k = 5354, so r_N >= 95%
      holds up to N = 281);
    - SP 800-90B RCT/APT and AIS31-style online-monobit health tests,
      whose per-window alarm counts feed EWMA and CUSUM control
      charts;
    - a windowed most-common-value min-entropy trend.

    The state is exposed three ways: {!snapshot} for dashboards,
    {!health_json}/{!http_handler}/{!serve} for the [/metrics] and
    [/health] endpoints, and continuously through telemetry gauges,
    counters, {!Ptrng_telemetry.Series} counter tracks and the JSONL
    event log (kind ["monitor"]).

    All entry points are serialized on an internal mutex, so the HTTP
    listener domain may poll while the producing domain feeds. *)

type config = {
  f0 : float;             (** Nominal sampled-oscillator frequency (Hz). *)
  ns : int array;         (** Accumulation-length grid, increasing. *)
  realizations : int;     (** Sliding realizations kept per N. *)
  min_realizations : int; (** Realizations before an N contributes. *)
  confidence : float;     (** Independence threshold on r_N (e.g. 0.95). *)
  judge_n : int;          (** The N at which r_N is judged. *)
  fit_stride : int;       (** Refit cadence, in jitter samples. *)
  h_claim : float;        (** Claimed min-entropy/bit for RCT/APT cutoffs. *)
  sp_alpha_exp : int;     (** RCT/APT false-alarm exponent (2^-e). *)
  sp_window : int;        (** APT window (bits). *)
  bit_window : int;       (** Chart/entropy window (bits). *)
  ais31_block : int;      (** Online-monobit block (bits). *)
  ais31_alpha_exp : int;  (** Online-monobit false-alarm exponent. *)
  ewma_lambda : float;    (** EWMA smoothing weight. *)
  ewma_limit : float;     (** EWMA control limit (asymptotic sigmas). *)
  cusum_k : float;        (** CUSUM allowance (sigma units). *)
  cusum_h : float;        (** CUSUM decision interval (sigma units). *)
  chart_sigma : float;    (** In-control sigma of alarms per window. *)
  entropy_floor : float;  (** Windowed min-entropy below this: degraded. *)
  entropy_fail : float;   (** ... below this: failing. *)
  history : int;          (** Samples kept per trend (sparklines). *)
  recovery_windows : int;
  (** Consecutive clean windows (no test alarms and entropy above the
      floor — judged on the raw alarm stream, not the charts' lingering
      level) after which one level of sticky chart state is forgiven —
      failing drops to degraded, then to ok on the next streak.  0
      keeps crossings latched forever. *)
}
(** Observatory tuning.  Build from {!default_config} and override
    fields as needed. *)

val default_config : f0:float -> config
(** Defaults sized for the paper's demonstrator: grid 16..1024 with
    256 sliding realizations, r judged at N = 64 against 95%, refit
    every 8192 periods; RCT/APT at h = 0.997, charts over 512-bit
    windows with an in-control alarm rate of zero. *)

type t
(** One live observatory. *)

val create : config -> t
(** Fresh observatory.
    @raise Invalid_argument on inconsistent configuration (empty or
    non-increasing grid, thresholds outside their ranges, windows too
    small). *)

val config : t -> config
(** The configuration [t] was created with. *)

val config_json : config -> Ptrng_telemetry.Json.t
(** The configuration as a flat JSON object ([ns] as an int list) —
    embedded in flight-recorder incident bundles so a post-mortem
    replay rebuilds an identically tuned monitor. *)

val config_of_json : Ptrng_telemetry.Json.t -> config option
(** Inverse of {!config_json}; [None] on any missing or mistyped
    field. *)

val attach_recorder : t -> Flight_recorder.t -> unit
(** Attach a black-box {!Flight_recorder}: every subsequent jitter
    sample, bit, closed window and verdict transition is captured into
    its rings, escalations (and fail-safe recoveries) arm an incident
    freeze, and the monitor's configuration is stored for the bundle.
    Attach before feeding — samples seen earlier are not in the
    rings. *)

val recorder : t -> Flight_recorder.t option
(** The attached recorder, if any. *)

val feed_jitter : t -> float -> unit
(** Feed one period-jitter sample (seconds; any consistent unit works
    — r_N is scale-free).  Non-finite samples are dropped. *)

val feed_jitter_array : t -> float array -> unit
(** Feed a chunk of jitter samples under one lock acquisition. *)

val feed_jitter_chunk : t -> Float.Array.t -> len:int -> unit
(** [feed_jitter_chunk t buf ~len] feeds [buf.(0 .. len-1)] from a
    reused floatarray under one lock acquisition — the allocation-free
    companion of a streamed producer ({!Ptrng_osc.Pair.fill}).  The
    refit cadence is evaluated once per chunk rather than per sample,
    so a refit may land up to [len - 1] samples later than with
    {!feed_jitter}.
    @raise Invalid_argument if [len] exceeds the buffer. *)

val feed_bit : t -> bool -> unit
(** Feed one sampled output bit through the health tests, charts and
    entropy window. *)

val feed_bits : t -> bool array -> unit
(** Feed a chunk of bits under one lock acquisition. *)

type transition = {
  tr_window : int;          (** Chart windows closed when it happened. *)
  tr_period : int;          (** Jitter samples consumed at that point. *)
  tr_bit : int;             (** Bits consumed at that point. *)
  tr_from : Verdict.status;
  tr_to : Verdict.status;
}
(** One verdict status change, positioned by stream counters (no
    wall clock — transitions replay deterministically). *)

type snapshot = {
  t_s : float;            (** {!Ptrng_telemetry.Clock} timestamp. *)
  periods : int;          (** Jitter samples consumed. *)
  bits : int;             (** Bits consumed. *)
  windows : int;          (** Chart windows closed. *)
  ready : bool;           (** Whether enough data arrived to fit r_N. *)
  judge_n : int;          (** N at which [r_judge] is evaluated. *)
  confidence : float;     (** Threshold [r_judge] is compared against. *)
  r_judge : float;        (** Live r_N at [judge_n]; [nan] until ready. *)
  k_est : float;          (** Fitted k = a/b; [infinity] = no flicker. *)
  threshold_n : int;      (** Largest N with r_N >= confidence; [max_int] = unbounded. *)
  points : Ptrng_measure.Variance_curve.point array;
                          (** Current windowed variance curve. *)
  rct_alarms : int;
  apt_alarms : int;
  ais31_alarms : int;
  ais31_blocks : int;
  alarm_rate : float;     (** Alarms in the last closed window; [nan] before. *)
  ewma_value : float;
  ewma_crossed : bool;    (** Sticky: EWMA chart ever alarmed. *)
  cusum_pos : float;
  cusum_neg : float;
  cusum_crossed : bool;   (** Sticky: CUSUM chart ever alarmed. *)
  min_entropy : float;    (** Last window's MCV estimate; [nan] before. *)
  clean_streak : int;     (** Consecutive clean windows so far. *)
  recoveries : int;       (** De-escalations granted since creation. *)
  windows_since_alarm : int;
                          (** Closed windows since one last alarmed. *)
  recent_r : float array;       (** r_N trend, oldest first. *)
  recent_entropy : float array; (** Min-entropy trend, oldest first. *)
  recent_alarms : float array;  (** Alarms-per-window trend, oldest first. *)
  recent_since_alarm : float array;
                          (** Windows-since-last-alarm trend, oldest first. *)
  transitions : transition array;
                          (** Verdict transitions, oldest first (capped
                              at [history]). *)
  verdict : Verdict.t;
}
(** One self-contained reading of the observatory, sufficient to
    render a dashboard without touching [t] again. *)

val snapshot : t -> snapshot
(** Read the current state.  The fit behind [r_judge]/[verdict] is
    recomputed locally from the live windows without touching the
    monitor's own stride-driven estimate, so polling at any cadence
    never perturbs the verdict trajectory the flight recorder
    captures. *)

val health_json : t -> Ptrng_telemetry.Json.t
(** The [/health] document, schema ["ptrng-monitor-health/1"]: the
    verdict with its reasons plus the independence, alarm, chart and
    entropy numbers behind it.  {!Verdict.of_json} parses it back. *)

val http_handler : t -> Http.handler
(** Routes [GET /] (a plain-text index of the endpoints below),
    [GET /metrics] (Prometheus text exposition via
    {!Ptrng_telemetry.Sink.to_prometheus}), [GET /health] (JSON),
    [GET /incidents] (flight-recorder incident summaries, schema
    ["ptrng-incidents/1"] — an empty list when no recorder is
    attached) and [GET /incidents/<n>] (the full frozen
    ["ptrng-incident/1"] bundle [n]); anything else is [None]
    (404). *)

val serve : ?host:string -> ?port:int -> t -> Http.t
(** Start an {!Http} server on {!http_handler}.  [port] defaults to 0
    (ephemeral — read it back with {!Http.port}). *)
