(** Detection-latency scoring for scenario runs.

    A scorer observes the {!Monitor} snapshots a scenario runner takes
    once per chunk and reduces them to the numbers the scenario matrix
    reports: how many windows and output bits passed between the fault
    onset and the first alarm, which detector fired first, how many
    test alarms the clean pre-onset prefix produced (false alarms),
    whether and when the verdict de-escalated back to ok after a
    transient, and the {e silent-lie margins} — the gap between what
    the stale static calibration still claims (r_N at the judged N,
    model min-entropy per bit) and what the live pipeline measures.

    Attribution granularity is the observation cadence: an alarm is
    timed at the first snapshot that shows it, so feeding snapshots
    every chunk bounds the timing error by one chunk. *)

type alarm = {
  detector : string;
      (** Which detector fired first: ["rct"], ["apt"], ["ais31"],
          ["ewma"], ["cusum"], ["independence"] or ["min-entropy"]. *)
  at_period : int;   (** Jitter samples consumed when first seen. *)
  at_bit : int;      (** Output bits consumed when first seen. *)
  at_window : int;   (** Chart windows closed when first seen. *)
  latency_periods : int;  (** [at_period] minus the schedule onset. *)
  latency_bits : int;     (** Bits since the last pre-onset snapshot. *)
  latency_windows : int;  (** Windows since the last pre-onset snapshot. *)
}
(** The first post-onset alarm. *)

type recovery = {
  at_period : int;  (** Jitter samples consumed at de-escalation. *)
  at_window : int;  (** Windows closed at de-escalation. *)
}
(** Start of the terminal ok streak after a detection — cleared again
    if the verdict later degrades, so a persistent fault that flaps
    through ok is not scored as recovered. *)

type t
(** One scorer, observing one scenario run. *)

val create :
  ?onset_period:int -> ?static_r:float -> ?static_entropy:float -> unit -> t
(** [create ~onset_period ~static_r ~static_entropy ()] scores a run
    whose schedule departs from calibration at [onset_period] (omit
    for a calm scenario — everything is then pre-onset and only false
    alarms are counted).  [static_r] and [static_entropy] are the
    stale claims of the static calibration, used for the lie margins;
    omitted (nan) claims disable the corresponding margin.
    @raise Invalid_argument if [onset_period < 0]. *)

val observe : t -> ?live_entropy:float -> Monitor.snapshot -> unit
(** Feed the next snapshot (snapshots must be taken in stream order).
    [live_entropy] is the runner's model min-entropy claim rebuilt
    from the live fit, compared against [static_entropy] for the
    entropy lie margin. *)

type summary = {
  onset_period : int option;  (** Echo of the schedule onset. *)
  observations : int;         (** Snapshots observed. *)
  false_alarms : int;
      (** Health-test alarms (RCT + APT + AIS-31) on the pre-onset
          prefix. *)
  pre_onset_nonok : int;
      (** Pre-onset snapshots whose verdict was not ok. *)
  detected : alarm option;    (** First post-onset alarm, if any. *)
  recovered : recovery option;
      (** Terminal de-escalation to ok after the detection (the ok
          streak still standing at the last snapshot). *)
  static_r : float;           (** Stale claimed r_N at the judged N. *)
  static_entropy : float;     (** Stale claimed model min-entropy/bit. *)
  live_r : float;             (** Last finite live r_N seen. *)
  live_entropy : float;       (** Last finite live model claim seen. *)
  lie_margin_r : float;
      (** Max over post-onset snapshots of [static_r - live r]; 0 when
          the live fit never fell below the stale claim. *)
  lie_margin_entropy : float;
      (** Max of [static_entropy - live claim] post-onset. *)
  final_status : Verdict.status;  (** Verdict at the last snapshot. *)
}
(** Everything the scenario report serializes. *)

val summary : t -> summary
(** The scores accumulated so far. *)
