(** Fixed-capacity sliding window of float samples.

    The streaming primitives of the health observatory: a ring buffer
    with O(1) push and O(capacity) mean/variance queries (capacities
    are tens to hundreds — recomputing beats maintaining numerically
    fragile running sums over evictions). *)

type t
(** One sliding window. *)

val create : capacity:int -> t
(** Empty window holding at most [capacity] samples.
    @raise Invalid_argument if [capacity < 2]. *)

val push : t -> float -> unit
(** Append one sample, evicting the oldest when full.  Non-finite
    values are dropped. *)

val count : t -> int
(** Samples currently held (grows to [capacity], then stays). *)

val total : t -> int
(** Samples pushed over the window's lifetime (evicted ones
    included). *)

val full : t -> bool
(** Whether the window holds [capacity] samples. *)

val last : t -> float
(** Most recent sample; [nan] while empty. *)

val mean : t -> float
(** Mean of the held samples; [nan] while empty. *)

val variance : t -> float
(** Unbiased sample variance of the held samples; [nan] with fewer
    than 2 samples. *)

val to_array : t -> float array
(** Held samples, oldest first. *)

val clear : t -> unit
(** Drop all held samples (lifetime {!total} is kept). *)
