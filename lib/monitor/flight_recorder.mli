(** The black-box flight recorder.

    A set of preallocated ring buffers that continuously capture the
    recent past of a running monitor — raw jitter samples, sampled
    bits, per-window detector statistics and verdict transitions — at
    zero allocation per sample.  When the verdict escalates (or the
    fail-safe grants a de-escalation) the recorder arms, keeps
    capturing for a few more windows of post-trigger context, and then
    freezes the rings into a wall-clock-free [ptrng-incident/1] JSON
    bundle that can be replayed bit-identically offline from the
    recorded seed and stream position (see docs/POSTMORTEM.md).

    The recorder never drives the monitor: {!Monitor} calls the
    [record_*]/[note_*]/[tick_window] hooks under its own lock, so a
    recorder attached to a monitor needs no locking of its own.
    Everything stored is data-driven (stream positions, window
    indices, detector statistics) — no timestamps — which is what
    makes the frozen bundle deterministic under replay. *)

type config = {
  jitter_capacity : int; (** Raw jitter samples kept (ring). *)
  bit_capacity : int;    (** Sampled bits kept (ring). *)
  window_capacity : int; (** Per-window statistic rows kept (ring). *)
  post_windows : int;    (** Windows captured after a trigger before freezing. *)
  max_incidents : int;   (** Frozen bundles retained; later triggers are dropped. *)
}

val default_config : config
(** 8192 jitter samples, 2048 bits, 64 window rows, 4 post-trigger
    windows, at most 8 incidents. *)

type provenance = {
  kind : string;          (** ["scenario"] or ["monitor"]. *)
  workload : string;      (** Scenario name, or the attack spec string. *)
  seed : int;             (** RNG seed the run was started from. *)
  divisor : int;          (** Sampler divisor (periods per bit). *)
  chunk : int;            (** Producer chunk length (periods). *)
  flicker_block : int;    (** Flicker-noise block length of the sources. *)
}
(** Everything needed to rebuild the exact stream: replay re-creates
    the sources from [seed], skips to the captured position and feeds
    the monitor with the same [chunk] discipline. *)

type incident
(** One frozen pre/post-context bundle. *)

type t
(** One recorder. *)

val create : ?config:config -> provenance:provenance -> unit -> t
(** Fresh recorder; all rings preallocated here.
    @raise Invalid_argument if any capacity is below 1 or
    [post_windows] is negative. *)

val config : t -> config
(** The capacity configuration the recorder was created with. *)

val provenance : t -> provenance
(** The stream provenance the recorder was created with. *)

val set_monitor_config : t -> Ptrng_telemetry.Json.t -> unit
(** Store the monitor's configuration (as produced by
    [Monitor.config_json]) for embedding in incident bundles. *)

(** {1 Capture hooks}

    Called by the monitor on its hot paths; none of these allocate. *)

val record_jitter : t -> float -> unit
(** Push one raw jitter sample into the jitter ring. *)

val record_jitter_chunk : t -> floatarray -> len:int -> unit
(** Push [buf.(0 .. len-1)] into the jitter ring in one pass. *)

val record_bit : t -> bool -> unit
(** Push one sampled bit into the bit ring. *)

val record_window :
  t ->
  index:int ->
  alarms:int ->
  min_entropy:float ->
  ewma:float ->
  cusum_pos:float ->
  r_n:float ->
  severity:int ->
  unit
(** Push one closed window's statistics row into the window ring. *)

val record_transition :
  t ->
  at_window:int ->
  at_period:int ->
  at_bit:int ->
  severity_from:int ->
  severity_to:int ->
  unit
(** Push one verdict transition into the transition ring (kept across
    incidents, so a bundle shows the transitions leading up to its
    trigger). *)

(** {1 Trigger state machine} *)

val note_trigger :
  t ->
  direction:string ->
  severity_from:int ->
  severity_to:int ->
  at_period:int ->
  at_bit:int ->
  at_window:int ->
  reasons:(string * string) list ->
  unit
(** Arm the capture: after {!config}[.post_windows] more
    {!tick_window} calls the rings freeze into an incident.  A note
    while already armed, or once [max_incidents] bundles exist, is
    ignored (the transition itself is still in the transition ring).
    [direction] is ["escalation"] or ["recovery"];
    [reasons] are the verdict's [(code, detail)] pairs. *)

val tick_window : t -> unit
(** Advance the post-trigger countdown by one closed window; freezes
    the incident when it reaches zero. *)

(** {1 Reading incidents} *)

val incident_count : t -> int
(** Number of frozen bundles retained so far. *)

val incidents : t -> incident list
(** Frozen bundles, oldest first; ids are 0, 1, ... in freeze order. *)

val incident : t -> int -> incident option
(** Bundle by id. *)

val incident_id : incident -> int
(** The bundle's id (its position in freeze order). *)

val incident_trigger : incident -> string * int * int
(** [(direction, severity_from, severity_to)]. *)

val incident_reasons : incident -> (string * string) list
(** The verdict's [(code, detail)] reasons at the trigger. *)

val incident_json : t -> incident -> Ptrng_telemetry.Json.t
(** The full wall-clock-free [ptrng-incident/1] bundle: trigger,
    provenance, monitor and recorder configuration, and the captured
    jitter/bit/window/transition context. *)

val summary_json : t -> incident -> Ptrng_telemetry.Json.t
(** A small header for listings ([GET /incidents], scenario reports):
    id, trigger, positions and capture sizes — no sample payloads. *)
