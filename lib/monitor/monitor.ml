module T = Ptrng_telemetry

type config = {
  f0 : float;
  ns : int array;
  realizations : int;
  min_realizations : int;
  confidence : float;
  judge_n : int;
  fit_stride : int;
  h_claim : float;
  sp_alpha_exp : int;
  sp_window : int;
  bit_window : int;
  ais31_block : int;
  ais31_alpha_exp : int;
  ewma_lambda : float;
  ewma_limit : float;
  cusum_k : float;
  cusum_h : float;
  chart_sigma : float;
  entropy_floor : float;
  entropy_fail : float;
  history : int;
  recovery_windows : int;
}

(* judge_n = 64 sits inside the default grid with margin on both
   sides of the paper's demonstrator: calibrated k = 5354 gives
   r_64 = 0.988, which stays above 95% even under the sliding-window
   fit's b noise, while a flicker-dominated (quenched-thermal) run
   collapses k by the quench factor and lands far below. *)
let default_config ~f0 =
  {
    f0;
    ns = [| 16; 64; 256; 1024 |];
    realizations = 256;
    min_realizations = 16;
    confidence = 0.95;
    judge_n = 64;
    fit_stride = 8192;
    h_claim = 0.997;
    sp_alpha_exp = 30;
    sp_window = 1024;
    bit_window = 512;
    ais31_block = 1024;
    ais31_alpha_exp = 20;
    ewma_lambda = 0.2;
    ewma_limit = 1.5;
    cusum_k = 0.25;
    cusum_h = 2.0;
    chart_sigma = 1.0;
    entropy_floor = 0.6;
    entropy_fail = 0.2;
    history = 64;
    recovery_windows = 64;
  }

type transition = {
  tr_window : int;
  tr_period : int;
  tr_bit : int;
  tr_from : Verdict.status;
  tr_to : Verdict.status;
}

type t = {
  cfg : config;
  lock : Mutex.t;
  rn : Rn_estimator.t;
  sp : Ptrng_sp90b.Health.monitor;
  ais : Ptrng_ais31.Online.t;
  ewma : Control_chart.ewma;
  cusum : Control_chart.cusum;
  mutable bits : int;
  mutable win_bits : int;
  mutable win_ones : int;
  mutable win_alarms : int;
  mutable windows : int;
  mutable last_entropy : float;
  mutable last_alarm_rate : float;
  recent_r : Window.t;
  recent_entropy : Window.t;
  recent_alarms : Window.t;
  mutable est : Rn_estimator.estimate option;
  mutable since_fit : int;
  mutable clean_streak : int;
  mutable recoveries : int;
  mutable last_status : Verdict.status;
  mutable transitions : transition list; (* newest first, capped at history *)
  mutable windows_since_alarm : int;
  recent_since_alarm : Window.t;
  mutable recorder : Flight_recorder.t option;
}

let g_r = T.Registry.Gauge.v ~help:"Live independence ratio r_N at the judged N" "ptrng_monitor_r_n"
let g_k = T.Registry.Gauge.v ~help:"Fitted thermal/flicker ratio k = a/b" "ptrng_monitor_k"
let g_threshold =
  T.Registry.Gauge.v ~help:"Largest N with r_N above the confidence threshold"
    "ptrng_monitor_threshold_n"
let g_ewma = T.Registry.Gauge.v ~help:"EWMA statistic over alarms per window" "ptrng_monitor_ewma"
let g_cusum =
  T.Registry.Gauge.v ~help:"Upper one-sided CUSUM over alarms per window (sigma units)"
    "ptrng_monitor_cusum_pos"
let g_entropy =
  T.Registry.Gauge.v ~help:"Windowed most-common-value min-entropy per bit"
    "ptrng_monitor_min_entropy"
let g_verdict =
  T.Registry.Gauge.v ~help:"Health verdict severity: 0 ok, 1 degraded, 2 failing"
    "ptrng_monitor_verdict"
let c_windows =
  T.Registry.Counter.v ~help:"Chart windows closed" "ptrng_monitor_windows_total"
let c_chart_alarms =
  T.Registry.Counter.v ~help:"Windows on which a control chart alarmed"
    "ptrng_monitor_chart_alarms_total"

let s_r = T.Series.v ~help:"Live r_N trajectory" "ptrng_monitor_r_n"
let s_alarm_rate = T.Series.v ~help:"Alarms per chart window" "ptrng_monitor_alarm_rate"
let s_ewma = T.Series.v ~help:"EWMA statistic trajectory" "ptrng_monitor_ewma"
let s_cusum = T.Series.v ~help:"Upper CUSUM trajectory" "ptrng_monitor_cusum_pos"
let s_entropy = T.Series.v ~help:"Windowed min-entropy trajectory" "ptrng_monitor_min_entropy"

let create cfg =
  if cfg.judge_n < 1 then invalid_arg "Monitor.create: judge_n < 1";
  if not (cfg.confidence > 0.0 && cfg.confidence < 1.0) then
    invalid_arg "Monitor.create: confidence outside (0, 1)";
  if cfg.fit_stride < 1 then invalid_arg "Monitor.create: fit_stride < 1";
  if cfg.bit_window < 8 then invalid_arg "Monitor.create: bit_window < 8";
  if not (cfg.entropy_fail <= cfg.entropy_floor) then
    invalid_arg "Monitor.create: entropy_fail above entropy_floor";
  if cfg.history < 2 then invalid_arg "Monitor.create: history < 2";
  if cfg.recovery_windows < 0 then
    invalid_arg "Monitor.create: recovery_windows < 0";
  {
    cfg;
    lock = Mutex.create ();
    rn =
      Rn_estimator.create ~ns:cfg.ns ~realizations:cfg.realizations
        ~min_realizations:cfg.min_realizations ~f0:cfg.f0 ();
    sp =
      Ptrng_sp90b.Health.monitor_of_entropy ~alpha_exp:cfg.sp_alpha_exp
        ~window:cfg.sp_window ~h:cfg.h_claim ();
    ais =
      Ptrng_ais31.Online.create ~block_bits:cfg.ais31_block
        ~alpha_exp:cfg.ais31_alpha_exp ();
    ewma =
      Control_chart.ewma_create ~lambda:cfg.ewma_lambda ~limit:cfg.ewma_limit
        ~mean:0.0 ~sigma:cfg.chart_sigma ();
    cusum =
      Control_chart.cusum_create ~k:cfg.cusum_k ~h:cfg.cusum_h ~mean:0.0
        ~sigma:cfg.chart_sigma ();
    bits = 0;
    win_bits = 0;
    win_ones = 0;
    win_alarms = 0;
    windows = 0;
    last_entropy = nan;
    last_alarm_rate = nan;
    recent_r = Window.create ~capacity:cfg.history;
    recent_entropy = Window.create ~capacity:cfg.history;
    recent_alarms = Window.create ~capacity:cfg.history;
    est = None;
    since_fit = 0;
    clean_streak = 0;
    recoveries = 0;
    last_status = Verdict.Ok;
    transitions = [];
    windows_since_alarm = 0;
    recent_since_alarm = Window.create ~capacity:cfg.history;
    recorder = None;
  }

let config t = t.cfg

(* Round-trippable configuration, embedded in incident bundles so a
   post-mortem replay rebuilds an identically tuned monitor. *)
let config_json c =
  let open T.Json in
  Obj
    [
      ("f0", num c.f0);
      ("ns", List (Array.to_list (Array.map (fun n -> Int n) c.ns)));
      ("realizations", Int c.realizations);
      ("min_realizations", Int c.min_realizations);
      ("confidence", num c.confidence);
      ("judge_n", Int c.judge_n);
      ("fit_stride", Int c.fit_stride);
      ("h_claim", num c.h_claim);
      ("sp_alpha_exp", Int c.sp_alpha_exp);
      ("sp_window", Int c.sp_window);
      ("bit_window", Int c.bit_window);
      ("ais31_block", Int c.ais31_block);
      ("ais31_alpha_exp", Int c.ais31_alpha_exp);
      ("ewma_lambda", num c.ewma_lambda);
      ("ewma_limit", num c.ewma_limit);
      ("cusum_k", num c.cusum_k);
      ("cusum_h", num c.cusum_h);
      ("chart_sigma", num c.chart_sigma);
      ("entropy_floor", num c.entropy_floor);
      ("entropy_fail", num c.entropy_fail);
      ("history", Int c.history);
      ("recovery_windows", Int c.recovery_windows);
    ]

let config_of_json j =
  let open T.Json in
  try
    let geti k =
      match member k j with Some (Int n) -> n | _ -> raise Exit
    in
    let getf k =
      match Option.bind (member k j) to_float with
      | Some f -> f
      | None -> raise Exit
    in
    let ns =
      match member "ns" j with
      | Some (List l) ->
        Array.of_list
          (List.map (function Int n -> n | _ -> raise Exit) l)
      | _ -> raise Exit
    in
    Some
      {
        f0 = getf "f0";
        ns;
        realizations = geti "realizations";
        min_realizations = geti "min_realizations";
        confidence = getf "confidence";
        judge_n = geti "judge_n";
        fit_stride = geti "fit_stride";
        h_claim = getf "h_claim";
        sp_alpha_exp = geti "sp_alpha_exp";
        sp_window = geti "sp_window";
        bit_window = geti "bit_window";
        ais31_block = geti "ais31_block";
        ais31_alpha_exp = geti "ais31_alpha_exp";
        ewma_lambda = getf "ewma_lambda";
        ewma_limit = getf "ewma_limit";
        cusum_k = getf "cusum_k";
        cusum_h = getf "cusum_h";
        chart_sigma = getf "chart_sigma";
        entropy_floor = getf "entropy_floor";
        entropy_fail = getf "entropy_fail";
        history = geti "history";
        recovery_windows = geti "recovery_windows";
      }
  with Exit -> None

let attach_recorder t r =
  Mutex.protect t.lock (fun () ->
      t.recorder <- Some r;
      Flight_recorder.set_monitor_config r (config_json t.cfg))

let recorder t = Mutex.protect t.lock (fun () -> t.recorder)

let r_judge_of t =
  match t.est with
  | None -> nan
  | Some e -> Rn_estimator.r_of_fit e.fit t.cfg.judge_n

(* Verdict rules (docs/MONITORING.md): each watched statistic
   contributes a reason; min-entropy collapse — or both charts
   alarming at once — escalates to failing.  [est] is a parameter so a
   wall-clock-cadence snapshot can judge a locally recomputed fit
   without perturbing the stride-driven trajectory the flight recorder
   captures. *)
let compute_verdict t ~(est : Rn_estimator.estimate option) =
  let reasons = ref [] in
  let add code detail = reasons := { Verdict.code; detail } :: !reasons in
  (match est with
  | None -> ()
  | Some e ->
    let r = Rn_estimator.r_of_fit e.fit t.cfg.judge_n in
    if r < t.cfg.confidence then
      add "independence"
        (Printf.sprintf
           "r_%d = %.3f below the %.0f%% independence threshold (k = %.0f)"
           t.cfg.judge_n r (100.0 *. t.cfg.confidence) e.k));
  let ewma_on = Control_chart.ewma_crossed t.ewma in
  let cusum_on = Control_chart.cusum_crossed t.cusum in
  if ewma_on then
    add "ewma"
      (Printf.sprintf "EWMA chart crossed (statistic %.2f)"
         (Control_chart.ewma_value t.ewma));
  if cusum_on then
    add "cusum"
      (Printf.sprintf "CUSUM chart crossed (S+ = %.2f, S- = %.2f)"
         (Control_chart.cusum_pos t.cusum)
         (Control_chart.cusum_neg t.cusum));
  if Float.is_finite t.last_entropy then begin
    if t.last_entropy < t.cfg.entropy_fail then
      add "min-entropy-collapse"
        (Printf.sprintf "windowed min-entropy %.3f below the failure floor %.2f"
           t.last_entropy t.cfg.entropy_fail)
    else if t.last_entropy < t.cfg.entropy_floor then
      add "min-entropy"
        (Printf.sprintf "windowed min-entropy %.3f below the floor %.2f"
           t.last_entropy t.cfg.entropy_floor)
  end;
  let both_charts = ewma_on && cusum_on in
  Verdict.make (List.rev !reasons) ~failing:(fun (r : Verdict.reason) ->
      r.code = "min-entropy-collapse"
      || (both_charts && (r.code = "ewma" || r.code = "cusum")))

let publish_verdict (v : Verdict.t) =
  T.Registry.Gauge.set g_verdict (float_of_int (Verdict.severity v.status))

let reason_pairs (v : Verdict.t) =
  List.map (fun (r : Verdict.reason) -> (r.Verdict.code, r.Verdict.detail)) v.reasons

(* Verdict-transition bookkeeping: remember the crossing for the
   dashboard, hand it to the flight recorder, and arm an incident
   capture when the severity went up (de-escalations are captured by
   the recovery path in [close_window]). *)
let note_verdict t (v : Verdict.t) =
  if v.status <> t.last_status then begin
    let from_s = t.last_status and to_s = v.status in
    let at_period = Rn_estimator.samples t.rn in
    let tr =
      {
        tr_window = t.windows;
        tr_period = at_period;
        tr_bit = t.bits;
        tr_from = from_s;
        tr_to = to_s;
      }
    in
    t.transitions <-
      tr :: List.filteri (fun i _ -> i < t.cfg.history - 1) t.transitions;
    t.last_status <- to_s;
    (match t.recorder with
    | None -> ()
    | Some r ->
      Flight_recorder.record_transition r ~at_window:t.windows ~at_period
        ~at_bit:t.bits
        ~severity_from:(Verdict.severity from_s)
        ~severity_to:(Verdict.severity to_s);
      if Verdict.severity to_s > Verdict.severity from_s then
        Flight_recorder.note_trigger r ~direction:"escalation"
          ~severity_from:(Verdict.severity from_s)
          ~severity_to:(Verdict.severity to_s) ~at_period ~at_bit:t.bits
          ~at_window:t.windows ~reasons:(reason_pairs v));
    T.Mark.emit "verdict.transition"
      ~args:
        [
          ("from", T.Json.String (Verdict.status_string from_s));
          ("to", T.Json.String (Verdict.status_string to_s));
          ("window", T.Json.Int t.windows);
        ];
    T.Event_log.emit ~kind:"monitor"
      [
        ("what", T.Json.String "transition");
        ("from", T.Json.String (Verdict.status_string from_s));
        ("to", T.Json.String (Verdict.status_string to_s));
        ("window", T.Json.Int t.windows);
        ("periods", T.Json.Int at_period);
        ("bits", T.Json.Int t.bits);
      ]
  end

let refresh_fit t =
  t.est <- Rn_estimator.estimate ~confidence:t.cfg.confidence t.rn;
  match t.est with
  | None -> ()
  | Some e ->
    let r = Rn_estimator.r_of_fit e.fit t.cfg.judge_n in
    Window.push t.recent_r r;
    T.Registry.Gauge.set g_r r;
    T.Registry.Gauge.set g_k e.k;
    if e.threshold_n < max_int then
      T.Registry.Gauge.set g_threshold (float_of_int e.threshold_n);
    T.Series.record s_r r;
    let v = compute_verdict t ~est:t.est in
    publish_verdict v;
    note_verdict t v;
    T.Event_log.emit ~kind:"monitor"
      [
        ("what", T.Json.String "fit");
        ("n", T.Json.Int t.cfg.judge_n);
        ("r_n", T.Json.num r);
        ("k", T.Json.num e.k);
        ("periods", T.Json.Int (Rn_estimator.samples t.rn));
      ]

let feed_jitter_unlocked t x =
  (match t.recorder with
  | Some r -> Flight_recorder.record_jitter r x
  | None -> ());
  Rn_estimator.feed t.rn x;
  t.since_fit <- t.since_fit + 1;
  if t.since_fit >= t.cfg.fit_stride then begin
    t.since_fit <- 0;
    refresh_fit t
  end

let close_window t =
  (* Advance the flight recorder's post-trigger countdown first: an
     armed capture freezes at the start of a later window close, so
     the frozen rings hold full windows of post-trigger context. *)
  (match t.recorder with
  | Some r -> Flight_recorder.tick_window r
  | None -> ());
  let w = t.win_bits in
  let alarms = float_of_int t.win_alarms in
  let p_max = float_of_int (max t.win_ones (w - t.win_ones)) /. float_of_int w in
  let h =
    if p_max >= 1.0 then 0.0 else -.(Float.log p_max /. Float.log 2.0)
  in
  t.last_entropy <- h;
  t.last_alarm_rate <- alarms;
  Window.push t.recent_entropy h;
  Window.push t.recent_alarms alarms;
  let e_alarm = Control_chart.ewma_feed t.ewma alarms in
  let c_alarm = Control_chart.cusum_feed t.cusum alarms in
  t.windows <- t.windows + 1;
  T.Registry.Counter.incr c_windows;
  if e_alarm || c_alarm then T.Registry.Counter.incr c_chart_alarms;
  if t.win_alarms = 0 then
    t.windows_since_alarm <- t.windows_since_alarm + 1
  else t.windows_since_alarm <- 0;
  Window.push t.recent_since_alarm (float_of_int t.windows_since_alarm);
  (* Fail-safe recovery: a window is clean when no test alarmed and
     the entropy trend is above the floor.  Cleanliness is judged on
     the raw alarm stream, not on the charts — their lingering level
     is exactly the memory a streak forgives.  A streak of
     [recovery_windows] clean windows forgives one level of sticky
     chart state — failing (both charts) drops to degraded first, then
     to ok on the next streak — so a transient fault de-escalates
     instead of latching forever, while a persistent one keeps
     alarming, never accrues a streak, and never climbs down. *)
  let clean = t.win_alarms = 0 && h >= t.cfg.entropy_floor in
  if clean then t.clean_streak <- t.clean_streak + 1 else t.clean_streak <- 0;
  let ewma_on = Control_chart.ewma_crossed t.ewma in
  let cusum_on = Control_chart.cusum_crossed t.cusum in
  let recovered = ref false in
  if
    t.cfg.recovery_windows > 0
    && t.clean_streak >= t.cfg.recovery_windows
    && (ewma_on || cusum_on)
  then begin
    if ewma_on && cusum_on then Control_chart.cusum_reset t.cusum
    else begin
      Control_chart.ewma_reset t.ewma;
      Control_chart.cusum_reset t.cusum
    end;
    t.recoveries <- t.recoveries + 1;
    t.clean_streak <- 0;
    recovered := true;
    T.Mark.emit "monitor.recovered"
      ~args:
        [
          ("window", T.Json.Int t.windows);
          ("recoveries", T.Json.Int t.recoveries);
        ];
    T.Event_log.emit ~kind:"monitor"
      [
        ("what", T.Json.String "recovered");
        ("window", T.Json.Int t.windows);
        ("recoveries", T.Json.Int t.recoveries);
      ]
  end;
  T.Registry.Gauge.set g_ewma (Control_chart.ewma_value t.ewma);
  T.Registry.Gauge.set g_cusum (Control_chart.cusum_pos t.cusum);
  T.Registry.Gauge.set g_entropy h;
  T.Series.record s_alarm_rate alarms;
  T.Series.record s_ewma (Control_chart.ewma_value t.ewma);
  T.Series.record s_cusum (Control_chart.cusum_pos t.cusum);
  T.Series.record s_entropy h;
  let prev_status = t.last_status in
  let v = compute_verdict t ~est:t.est in
  publish_verdict v;
  (match t.recorder with
  | Some r ->
    Flight_recorder.record_window r ~index:t.windows ~alarms:t.win_alarms
      ~min_entropy:h
      ~ewma:(Control_chart.ewma_value t.ewma)
      ~cusum_pos:(Control_chart.cusum_pos t.cusum)
      ~r_n:(r_judge_of t)
      ~severity:(Verdict.severity v.status)
  | None -> ());
  note_verdict t v;
  if !recovered then
    (match t.recorder with
    | Some r ->
      Flight_recorder.note_trigger r ~direction:"recovery"
        ~severity_from:(Verdict.severity prev_status)
        ~severity_to:(Verdict.severity v.status)
        ~at_period:(Rn_estimator.samples t.rn)
        ~at_bit:t.bits ~at_window:t.windows ~reasons:(reason_pairs v)
    | None -> ());
  T.Event_log.emit ~kind:"monitor"
    [
      ("what", T.Json.String "window");
      ("window", T.Json.Int t.windows);
      ("alarms", T.Json.num alarms);
      ("min_entropy", T.Json.num h);
      ("ewma", T.Json.num (Control_chart.ewma_value t.ewma));
      ("cusum_pos", T.Json.num (Control_chart.cusum_pos t.cusum));
    ];
  t.win_bits <- 0;
  t.win_ones <- 0;
  t.win_alarms <- 0

let feed_bit_unlocked t b =
  (match t.recorder with
  | Some r -> Flight_recorder.record_bit r b
  | None -> ());
  t.bits <- t.bits + 1;
  t.win_bits <- t.win_bits + 1;
  if b then t.win_ones <- t.win_ones + 1;
  (* Flag-returning feeds: the record/option verdicts of
     [monitor_feed]/[feed] would be a heap block per bit here (R7). *)
  let flags = Ptrng_sp90b.Health.monitor_feed_flags t.sp b in
  if flags land 1 <> 0 then t.win_alarms <- t.win_alarms + 1;
  if flags land 2 <> 0 then t.win_alarms <- t.win_alarms + 1;
  if Ptrng_ais31.Online.feed_flag t.ais b = 1 then
    t.win_alarms <- t.win_alarms + 1;
  if t.win_bits >= t.cfg.bit_window then close_window t

let feed_jitter t x = Mutex.protect t.lock (fun () -> feed_jitter_unlocked t x)

let feed_jitter_array t xs =
  Mutex.protect t.lock (fun () -> Array.iter (feed_jitter_unlocked t) xs)

(* The two per-chunk/per-bit entries take the lock by hand:
   [Mutex.protect] would build a fresh closure over [t]/[buf]/[len] on
   every call, and these are the only monitor entries on the
   zero-allocation hot path (R7). *)
let feed_jitter_chunk t buf ~len =
  Mutex.lock t.lock;
  (try
     (match t.recorder with
     | Some r -> Flight_recorder.record_jitter_chunk r buf ~len
     | None -> ());
     Rn_estimator.feed_many t.rn buf ~len;
     t.since_fit <- t.since_fit + len;
     if t.since_fit >= t.cfg.fit_stride then begin
       t.since_fit <- 0;
       refresh_fit t
     end
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock

let feed_bit t b =
  Mutex.lock t.lock;
  (try feed_bit_unlocked t b
   with e ->
     Mutex.unlock t.lock;
     raise e);
  Mutex.unlock t.lock

let feed_bits t bs =
  Mutex.protect t.lock (fun () -> Array.iter (feed_bit_unlocked t) bs)

type snapshot = {
  t_s : float;
  periods : int;
  bits : int;
  windows : int;
  ready : bool;
  judge_n : int;
  confidence : float;
  r_judge : float;
  k_est : float;
  threshold_n : int;
  points : Ptrng_measure.Variance_curve.point array;
  rct_alarms : int;
  apt_alarms : int;
  ais31_alarms : int;
  ais31_blocks : int;
  alarm_rate : float;
  ewma_value : float;
  ewma_crossed : bool;
  cusum_pos : float;
  cusum_neg : float;
  cusum_crossed : bool;
  min_entropy : float;
  clean_streak : int;
  recoveries : int;
  windows_since_alarm : int;
  recent_r : float array;
  recent_entropy : float array;
  recent_alarms : float array;
  recent_since_alarm : float array;
  transitions : transition array;
  verdict : Verdict.t;
}

let snapshot_unlocked t =
  (* Pure read: the fit is recomputed locally instead of assigning
     [t.est], so a wall-clock-cadence dashboard poll cannot perturb
     the stride-driven verdict trajectory — the property the flight
     recorder's replay contract depends on. *)
  let est = Rn_estimator.estimate ~confidence:t.cfg.confidence t.rn in
  let rct_alarms, apt_alarms = Ptrng_sp90b.Health.monitor_alarms t.sp in
  let k_est, threshold_n =
    match est with
    | None -> (nan, max_int)
    | Some e -> (e.k, e.threshold_n)
  in
  let r_judge =
    match est with
    | None -> nan
    | Some e -> Rn_estimator.r_of_fit e.fit t.cfg.judge_n
  in
  let v = compute_verdict t ~est in
  publish_verdict v;
  {
    t_s = T.Clock.now ();
    periods = Rn_estimator.samples t.rn;
    bits = t.bits;
    windows = t.windows;
    ready = est <> None;
    judge_n = t.cfg.judge_n;
    confidence = t.cfg.confidence;
    r_judge;
    k_est;
    threshold_n;
    points = Rn_estimator.points t.rn;
    rct_alarms;
    apt_alarms;
    ais31_alarms = Ptrng_ais31.Online.alarms t.ais;
    ais31_blocks = Ptrng_ais31.Online.blocks t.ais;
    alarm_rate = t.last_alarm_rate;
    ewma_value = Control_chart.ewma_value t.ewma;
    ewma_crossed = Control_chart.ewma_crossed t.ewma;
    cusum_pos = Control_chart.cusum_pos t.cusum;
    cusum_neg = Control_chart.cusum_neg t.cusum;
    cusum_crossed = Control_chart.cusum_crossed t.cusum;
    min_entropy = t.last_entropy;
    clean_streak = t.clean_streak;
    recoveries = t.recoveries;
    windows_since_alarm = t.windows_since_alarm;
    recent_r = Window.to_array t.recent_r;
    recent_entropy = Window.to_array t.recent_entropy;
    recent_alarms = Window.to_array t.recent_alarms;
    recent_since_alarm = Window.to_array t.recent_since_alarm;
    transitions = Array.of_list (List.rev t.transitions);
    verdict = v;
  }

let snapshot t = Mutex.protect t.lock (fun () -> snapshot_unlocked t)

let health_json t =
  let s = snapshot t in
  let open T.Json in
  Obj
    [
      ("schema", String "ptrng-monitor-health/1");
      ("status", String (Verdict.status_string s.verdict.status));
      ( "reasons",
        List
          (List.map
             (fun (r : Verdict.reason) ->
               Obj
                 [
                   ("code", String r.code); ("detail", String r.detail);
                 ])
             s.verdict.reasons) );
      ("periods", Int s.periods);
      ("bits", Int s.bits);
      ("windows", Int s.windows);
      ("ready", Bool s.ready);
      ( "independence",
        Obj
          [
            ("n", Int s.judge_n);
            ("r_n", num s.r_judge);
            ("confidence", num s.confidence);
            ("k", num s.k_est);
            ( "threshold_n",
              if s.threshold_n = max_int then Null else Int s.threshold_n );
          ] );
      ( "alarms",
        Obj
          [
            ("rct", Int s.rct_alarms);
            ("apt", Int s.apt_alarms);
            ("ais31", Int s.ais31_alarms);
            ("ais31_blocks", Int s.ais31_blocks);
            ("rate", num s.alarm_rate);
          ] );
      ( "charts",
        Obj
          [
            ("ewma", num s.ewma_value);
            ("ewma_crossed", Bool s.ewma_crossed);
            ("cusum_pos", num s.cusum_pos);
            ("cusum_neg", num s.cusum_neg);
            ("cusum_crossed", Bool s.cusum_crossed);
          ] );
      ("min_entropy", num s.min_entropy);
      ( "recovery",
        Obj
          [
            ("clean_streak", Int s.clean_streak);
            ("recoveries", Int s.recoveries);
          ] );
    ]

let index_body =
  String.concat "\n"
    [
      "ptrng monitor";
      "";
      "  GET /               this index";
      "  GET /metrics        Prometheus text exposition of every metric";
      "  GET /health         current verdict with reasons \
       (ptrng-monitor-health/1)";
      "  GET /incidents      flight-recorder incident summaries \
       (ptrng-incidents/1)";
      "  GET /incidents/<n>  full frozen incident bundle n \
       (ptrng-incident/1)";
      "";
    ]

let incidents_index_json t =
  Mutex.protect t.lock (fun () ->
      let summaries =
        match t.recorder with
        | None -> []
        | Some r ->
          List.map (Flight_recorder.summary_json r) (Flight_recorder.incidents r)
      in
      T.Json.Obj
        [
          ("schema", T.Json.String "ptrng-incidents/1");
          ("count", T.Json.Int (List.length summaries));
          ("incidents", T.Json.List summaries);
        ])

let incident_body t id =
  Mutex.protect t.lock (fun () ->
      match t.recorder with
      | None -> None
      | Some r ->
        Option.map
          (fun i -> T.Json.to_string (Flight_recorder.incident_json r i) ^ "\n")
          (Flight_recorder.incident r id))

let incidents_prefix = "/incidents/"

let http_handler t path =
  match path with
  | "/metrics" ->
    Some
      (Http.response
         ~content_type:"text/plain; version=0.0.4; charset=utf-8"
         (T.Sink.to_prometheus ()))
  | "/health" ->
    Some
      (Http.response ~content_type:"application/json"
         (T.Json.to_string (health_json t) ^ "\n"))
  | "/incidents" ->
    Some
      (Http.response ~content_type:"application/json"
         (T.Json.to_string (incidents_index_json t) ^ "\n"))
  | "/" -> Some (Http.response index_body)
  | _ when String.starts_with ~prefix:incidents_prefix path -> (
    let rest =
      String.sub path
        (String.length incidents_prefix)
        (String.length path - String.length incidents_prefix)
    in
    match int_of_string_opt rest with
    | Some id when id >= 0 ->
      Option.map
        (fun body -> Http.response ~content_type:"application/json" body)
        (incident_body t id)
    | Some _ | None -> None)
  | _ -> None

let serve ?host ?port t = Http.start ?host ?port ~handler:(http_handler t) ()
