type response = { status : int; content_type : string; body : string }

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body
    =
  { status; content_type; body }

type handler = string -> response option

type t = {
  sock : Unix.file_descr;
  host : string;
  bound_port : int;
  stop_flag : bool Atomic.t;
  mutable listener : unit Domain.t option;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.of_string s in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd bytes !off (len - !off) in
    if n <= 0 then raise Exit;
    off := !off + n
  done

let respond fd ~head_only { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (status_text status) content_type (String.length body)
  in
  write_all fd head;
  if not head_only then write_all fd body

(* The request line is all we need: "<METHOD> <path> HTTP/1.x".  GET
   requests have no body, so we read until the first newline arrives,
   the request-line budget is exhausted, or the per-connection receive
   timeout fires — a trickling or silent client cannot pin the
   listener. *)
let max_request_line = 4096

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | meth :: target :: _ when meth <> "" && target <> "" ->
    let path =
      match String.index_opt target '?' with
      | Some q -> String.sub target 0 q
      | None -> target
    in
    Some (meth, path)
  | _ -> None

let read_request_line fd =
  let buf = Bytes.create max_request_line in
  let rec go off =
    if off >= max_request_line then `Too_large
    else
      match Unix.recv fd buf off (max_request_line - off) [] with
      | 0 -> if off = 0 then `Closed else `Truncated
      | n -> (
        match Bytes.index_from_opt buf off '\n' with
        | Some eol when eol < off + n -> `Line (Bytes.sub_string buf 0 eol)
        | Some _ | None -> go (off + n))
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        ->
        `Timeout
  in
  go 0

let serve_connection handler ~read_timeout fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout
   with Unix.Unix_error _ -> ());
  match read_request_line fd with
  | `Closed -> ()
  | `Timeout ->
    respond fd ~head_only:false (response ~status:408 "request timeout\n")
  | `Too_large ->
    respond fd ~head_only:false
      (response ~status:431 "request line too long\n")
  | `Truncated ->
    respond fd ~head_only:false (response ~status:400 "truncated request\n")
  | `Line line -> (
    match parse_request_line line with
    | None -> respond fd ~head_only:false (response ~status:400 "bad request\n")
    | Some (meth, path) when meth = "GET" || meth = "HEAD" -> (
      let head_only = meth = "HEAD" in
      match handler path with
      | Some r -> respond fd ~head_only r
      | None ->
        respond fd ~head_only
          (response ~status:404 ("no such path: " ^ path ^ "\n")))
    | Some _ ->
      respond fd ~head_only:false (response ~status:405 "only GET and HEAD\n"))

(* Accept loop: select with a short timeout so the stop flag is
   honoured promptly; no per-iteration failure (client went away,
   malformed bytes, accept error under fd pressure) may take the
   listener down — {!stop} joins this domain, so an escaped exception
   would resurface there and leak the socket. *)
let listen_loop t handler ~read_timeout =
  while not (Atomic.get t.stop_flag) do
    try
      match Unix.select [ t.sock ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ ->
        let fd, _ = Unix.accept t.sock in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            try serve_connection handler ~read_timeout fd
            with Unix.Unix_error _ | Exit | Failure _ -> ())
    with Unix.Unix_error _ | Sys_error _ -> ()
  done

let start ?(host = "127.0.0.1") ?(port = 0) ?(read_timeout = 5.0) ~handler () =
  if not (read_timeout > 0.0) then invalid_arg "Http.start: read_timeout <= 0";
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    { sock; host; bound_port; stop_flag = Atomic.make false; listener = None }
  in
  t.listener <-
    Some
      (Domain.spawn (fun () ->
           (* Last-resort belt: the loop already swallows per-iteration
              errors, but nothing may escape the domain body — [stop]
              re-raises pending exceptions from [Domain.join]. *)
           try listen_loop t handler ~read_timeout with _ -> ()));
  t

let port t = t.bound_port

let url t = Printf.sprintf "http://%s:%d" t.host t.bound_port

let stop t =
  match t.listener with
  | None -> ()
  | Some d ->
    Atomic.set t.stop_flag true;
    (* Even if the join re-raises, the listener slot is cleared and
       the socket closed — stop never leaks either. *)
    Fun.protect
      ~finally:(fun () ->
        t.listener <- None;
        try Unix.close t.sock with Unix.Unix_error _ -> ())
      (fun () -> Domain.join d)
