type response = { status : int; content_type : string; body : string }

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body
    =
  { status; content_type; body }

type handler = string -> response option

type t = {
  sock : Unix.file_descr;
  host : string;
  bound_port : int;
  stop_flag : bool Atomic.t;
  mutable listener : unit Domain.t option;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.of_string s in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd bytes !off (len - !off) in
    if n <= 0 then raise Exit;
    off := !off + n
  done

let respond fd ~head_only { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (status_text status) content_type (String.length body)
  in
  write_all fd head;
  if not head_only then write_all fd body

(* The request line is all we need: "<METHOD> <path> HTTP/1.x".  GET
   requests have no body, so one read of the socket is enough for any
   client that is not trickling bytes on purpose. *)
let parse_request buf len =
  match String.index_opt (String.sub buf 0 len) '\n' with
  | None -> None
  | Some eol ->
    let line = String.trim (String.sub buf 0 eol) in
    (match String.split_on_char ' ' line with
    | meth :: target :: _ ->
      let path =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      Some (meth, path)
    | _ -> None)

let serve_connection handler fd =
  let buf = Bytes.create 8192 in
  let n = Unix.recv fd buf 0 (Bytes.length buf) [] in
  if n > 0 then begin
    match parse_request (Bytes.to_string buf) n with
    | None -> respond fd ~head_only:false (response ~status:400 "bad request\n")
    | Some (meth, path) when meth = "GET" || meth = "HEAD" -> (
      let head_only = meth = "HEAD" in
      match handler path with
      | Some r -> respond fd ~head_only r
      | None ->
        respond fd ~head_only (response ~status:404 ("no such path: " ^ path ^ "\n")))
    | Some _ ->
      respond fd ~head_only:false (response ~status:405 "only GET and HEAD\n")
  end

(* Accept loop: select with a short timeout so the stop flag is
   honoured promptly; per-connection failures (client went away,
   malformed bytes) must never take the listener down. *)
let listen_loop t handler =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.sock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      let fd, _ = Unix.accept t.sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try serve_connection handler fd
          with Unix.Unix_error _ | Exit | Failure _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(host = "127.0.0.1") ?(port = 0) ~handler () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    { sock; host; bound_port; stop_flag = Atomic.make false; listener = None }
  in
  t.listener <- Some (Domain.spawn (fun () -> listen_loop t handler));
  t

let port t = t.bound_port

let url t = Printf.sprintf "http://%s:%d" t.host t.bound_port

let stop t =
  match t.listener with
  | None -> ()
  | Some d ->
    Atomic.set t.stop_flag true;
    Domain.join d;
    t.listener <- None;
    (try Unix.close t.sock with Unix.Unix_error _ -> ())
