let levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let spark xs =
  let finite = Array.of_list (List.filter Float.is_finite (Array.to_list xs)) in
  if Array.length finite = 0 then ""
  else begin
    let lo = Array.fold_left Float.min finite.(0) finite in
    let hi = Array.fold_left Float.max finite.(0) finite in
    let span = hi -. lo in
    let buf = Buffer.create (Array.length finite * 3) in
    Array.iter
      (fun x ->
        let level =
          if span <= 0.0 then 0
          else
            let i = int_of_float ((x -. lo) /. span *. 7.0) in
            Int.max 0 (Int.min 7 i)
        in
        Buffer.add_string buf levels.(level))
      finite;
    Buffer.contents buf
  end

let clear_screen = "\x1b[2J\x1b[H"

let human_count n =
  if n >= 10_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.1fk" (float_of_int n /. 1e3)
  else string_of_int n

let render ?(color = true) (s : Monitor.snapshot) =
  let status = s.verdict.Verdict.status in
  let banner_text = String.uppercase_ascii (Verdict.status_string status) in
  let banner =
    if not color then Printf.sprintf "[ %s ]" banner_text
    else
      let code =
        match status with
        | Verdict.Ok -> "\x1b[42;30m"      (* green *)
        | Verdict.Degraded -> "\x1b[43;30m" (* yellow *)
        | Verdict.Failing -> "\x1b[41;97m"  (* red *)
      in
      Printf.sprintf "%s %s \x1b[0m" code banner_text
  in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "ptrng monitor %s   periods %s   bits %s   windows %d" banner
    (human_count s.periods) (human_count s.bits) s.windows;
  (if s.ready then begin
     line "  r_%d = %.4f  (threshold %.2f; fitted k = %.0f, independent to N = %s)"
       s.judge_n s.r_judge s.confidence s.k_est
       (if s.threshold_n = max_int then "inf" else string_of_int s.threshold_n);
     line "  r_N trend        %s" (spark s.recent_r)
   end
   else line "  r_N: warming up (%s periods consumed)" (human_count s.periods));
  (if Float.is_finite s.min_entropy then begin
     line "  min-entropy %.3f %s" s.min_entropy (spark s.recent_entropy);
     line "  alarms/window    %s" (spark s.recent_alarms)
   end
   else line "  min-entropy: warming up (%d / window bits)" s.bits);
  line "  health alarms    rct %d  apt %d  ais31 %d/%d blocks" s.rct_alarms
    s.apt_alarms s.ais31_alarms s.ais31_blocks;
  line "  ewma %.2f%s   cusum %.2f/%.2f%s" s.ewma_value
    (if s.ewma_crossed then " CROSSED" else "")
    s.cusum_pos s.cusum_neg
    (if s.cusum_crossed then " CROSSED" else "");
  line "  recoveries %d   windows since alarm %d %s" s.recoveries
    s.windows_since_alarm
    (spark s.recent_since_alarm);
  if Array.length s.transitions > 0 then begin
    line "  verdict history:";
    Array.iter
      (fun (tr : Monitor.transition) ->
        line "    window %d: %s -> %s (period %d, bit %d)" tr.tr_window
          (Verdict.status_string tr.tr_from)
          (Verdict.status_string tr.tr_to)
          tr.tr_period tr.tr_bit)
      s.transitions
  end;
  List.iter
    (fun (r : Verdict.reason) -> line "  ! %s: %s" r.code r.detail)
    s.verdict.Verdict.reasons;
  Buffer.contents b
