(** Terminal rendering of a monitor {!Monitor.snapshot}.

    A refreshing text dashboard for [repro monitor]: verdict banner,
    live r_N against its threshold, alarm totals, control-chart state,
    Unicode sparklines of the recent trends, the fail-safe recovery
    counter with a windows-since-last-alarm sparkline, and the verdict
    transition history.  Pure string construction — the caller owns
    the terminal (clearing, refresh cadence). *)

val spark : float array -> string
(** Unicode sparkline of the samples, min-max normalised (so shape,
    not scale, is shown); [""] for an empty array. *)

val render : ?color:bool -> Monitor.snapshot -> string
(** Multi-line dashboard (trailing newline included).  [color]
    (default true) enables ANSI colors on the verdict banner: green
    ok, yellow degraded, red failing. *)

val clear_screen : string
(** ANSI sequence clearing the terminal and homing the cursor —
    prepend to {!render} output for an in-place refresh. *)
