(** EWMA and CUSUM control charts.

    Classic SPC monitors over a statistic stream, used by the health
    observatory to watch alarm rates: the EWMA chart reacts to
    sustained small shifts of the mean, the (two-sided, tabular) CUSUM
    chart accumulates departures and crosses its decision interval on
    a persistent shift.  Both are parameterised by the in-control mean
    and standard deviation of the watched statistic; both keep a
    sticky [crossed] flag so a transient excursion between two polls
    is not lost. *)

type ewma
(** Exponentially-weighted moving-average chart. *)

val ewma_create :
  ?lambda:float -> ?limit:float -> mean:float -> sigma:float -> unit -> ewma
(** Chart around the in-control [mean]/[sigma].  [lambda] (default
    0.2) is the smoothing weight; [limit] (default 3.0) the control
    limit in multiples of the EWMA's asymptotic standard deviation
    [sigma sqrt(lambda / (2 - lambda))].
    @raise Invalid_argument unless [0 < lambda <= 1], [limit > 0] and
    [sigma > 0]. *)

val ewma_feed : ewma -> float -> bool
(** Feed one observation; [true] when the updated EWMA sits outside
    the control limits. *)

val ewma_value : ewma -> float
(** Current EWMA statistic (starts at the in-control mean). *)

val ewma_alarming : ewma -> bool
(** Whether the current statistic is outside the limits. *)

val ewma_crossed : ewma -> bool
(** Whether the chart ever alarmed (sticky). *)

val ewma_reset : ewma -> unit
(** Return the statistic to the in-control mean and clear the sticky
    flag (restart after intervention or verified recovery). *)

val ewma_clear_crossed : ewma -> unit
(** Clear only the sticky flag, keeping the statistic — the monitor's
    de-escalation policy, not the chart, decides when a crossing is
    forgiven. *)

val ewma_decay : ewma -> keep:float -> unit
(** Pull the statistic toward the in-control mean, keeping [keep] in
    [0,1] of its current departure.  The sticky flag is untouched.
    @raise Invalid_argument if [keep] is outside [0,1]. *)

type cusum
(** Two-sided tabular CUSUM chart. *)

val cusum_create :
  ?k:float -> ?h:float -> mean:float -> sigma:float -> unit -> cusum
(** Chart around the in-control [mean]/[sigma].  [k] (default 0.5) is
    the allowance and [h] (default 5.0) the decision interval, both in
    sigma units — the textbook design detecting a one-sigma shift in
    about ten observations.
    @raise Invalid_argument unless [k >= 0], [h > 0] and [sigma > 0]. *)

val cusum_feed : cusum -> float -> bool
(** Feed one observation; [true] when either one-sided sum now
    exceeds the decision interval. *)

val cusum_pos : cusum -> float
(** Upper one-sided sum, in sigma units. *)

val cusum_neg : cusum -> float
(** Lower one-sided sum, in sigma units. *)

val cusum_alarming : cusum -> bool
(** Whether either sum currently exceeds the decision interval. *)

val cusum_crossed : cusum -> bool
(** Whether the chart ever alarmed (sticky). *)

val cusum_reset : cusum -> unit
(** Zero both sums and the sticky flag (restart after intervention). *)

val cusum_clear_crossed : cusum -> unit
(** Clear only the sticky flag, keeping both sums. *)

val cusum_decay : cusum -> keep:float -> unit
(** Scale both one-sided sums by [keep] in [0,1].  The sticky flag is
    untouched.
    @raise Invalid_argument if [keep] is outside [0,1]. *)
