(** Minimal dependency-free HTTP/1.1 server for the observatory
    endpoints.

    One listener running on its own domain, handling connections
    sequentially — the expected clients are a Prometheus scraper and a
    human with [curl], not a traffic front end.  Requests are routed
    through a caller-supplied handler; every response closes its
    connection.  The container ships no HTTP library, and the
    observability layer must not grow dependencies, so this speaks
    just enough of the protocol: request-line parsing, [GET]/[HEAD],
    [Content-Length], [Connection: close]. *)

type response = {
  status : int;          (** e.g. 200. *)
  content_type : string; (** e.g. ["application/json"]. *)
  body : string;
}
(** One HTTP response. *)

val response : ?status:int -> ?content_type:string -> string -> response
(** Body-first constructor; [status] defaults to 200, [content_type]
    to ["text/plain; charset=utf-8"]. *)

type handler = string -> response option
(** Maps a request path (query string stripped) to a response; [None]
    becomes a 404. *)

type t
(** A running server. *)

val start :
  ?host:string -> ?port:int -> ?read_timeout:float -> handler:handler ->
  unit -> t
(** Bind [host] (default ["127.0.0.1"]) at [port] (default 0 = pick an
    ephemeral port), spawn the listener domain and start serving.
    [read_timeout] (seconds, default 5.0) bounds how long one
    connection may take to deliver its request line — a silent client
    gets a 408, a trickling one at most [max] 4096 bytes before a 431;
    malformed request lines get a 400 and non-[GET]/[HEAD] methods a
    405.
    @raise Unix.Unix_error if the socket cannot be bound.
    @raise Invalid_argument if [read_timeout <= 0]. *)

val port : t -> int
(** The actually bound port — the one to scrape when [port:0] was
    requested. *)

val url : t -> string
(** ["http://host:port"] of the running server. *)

val stop : t -> unit
(** Stop accepting, join the listener domain and close the socket.
    Idempotent. *)
