type ewma = {
  e_lambda : float;
  e_mean : float;
  e_halfwidth : float;      (* limit * asymptotic EWMA sigma *)
  mutable e_value : float;
  mutable e_crossed : bool;
}

let ewma_create ?(lambda = 0.2) ?(limit = 3.0) ~mean ~sigma () =
  if not (lambda > 0.0 && lambda <= 1.0) then
    invalid_arg "Control_chart.ewma_create: lambda outside (0,1]";
  if limit <= 0.0 then invalid_arg "Control_chart.ewma_create: limit <= 0";
  if sigma <= 0.0 then invalid_arg "Control_chart.ewma_create: sigma <= 0";
  let asym = sigma *. sqrt (lambda /. (2.0 -. lambda)) in
  {
    e_lambda = lambda;
    e_mean = mean;
    e_halfwidth = limit *. asym;
    e_value = mean;
    e_crossed = false;
  }

let ewma_alarming t = Float.abs (t.e_value -. t.e_mean) > t.e_halfwidth

let ewma_feed t x =
  if Float.is_finite x then
    t.e_value <- (t.e_lambda *. x) +. ((1.0 -. t.e_lambda) *. t.e_value);
  let alarm = ewma_alarming t in
  if alarm then t.e_crossed <- true;
  alarm

let ewma_value t = t.e_value
let ewma_crossed t = t.e_crossed

let ewma_reset t =
  t.e_value <- t.e_mean;
  t.e_crossed <- false

let ewma_clear_crossed t = t.e_crossed <- false

let ewma_decay t ~keep =
  if not (keep >= 0.0 && keep <= 1.0) then
    invalid_arg "Control_chart.ewma_decay: keep outside [0,1]";
  t.e_value <- t.e_mean +. (keep *. (t.e_value -. t.e_mean))

type cusum = {
  c_mean : float;
  c_sigma : float;
  c_k : float;              (* allowance, sigma units *)
  c_h : float;              (* decision interval, sigma units *)
  mutable c_pos : float;    (* sigma units *)
  mutable c_neg : float;
  mutable c_crossed : bool;
}

let cusum_create ?(k = 0.5) ?(h = 5.0) ~mean ~sigma () =
  if k < 0.0 then invalid_arg "Control_chart.cusum_create: k < 0";
  if h <= 0.0 then invalid_arg "Control_chart.cusum_create: h <= 0";
  if sigma <= 0.0 then invalid_arg "Control_chart.cusum_create: sigma <= 0";
  { c_mean = mean; c_sigma = sigma; c_k = k; c_h = h;
    c_pos = 0.0; c_neg = 0.0; c_crossed = false }

let cusum_alarming t = t.c_pos > t.c_h || t.c_neg > t.c_h

let cusum_feed t x =
  if Float.is_finite x then begin
    let z = (x -. t.c_mean) /. t.c_sigma in
    t.c_pos <- Float.max 0.0 (t.c_pos +. z -. t.c_k);
    t.c_neg <- Float.max 0.0 (t.c_neg -. z -. t.c_k)
  end;
  let alarm = cusum_alarming t in
  if alarm then t.c_crossed <- true;
  alarm

let cusum_pos t = t.c_pos
let cusum_neg t = t.c_neg
let cusum_crossed t = t.c_crossed

let cusum_reset t =
  t.c_pos <- 0.0;
  t.c_neg <- 0.0;
  t.c_crossed <- false

let cusum_clear_crossed t = t.c_crossed <- false

let cusum_decay t ~keep =
  if not (keep >= 0.0 && keep <= 1.0) then
    invalid_arg "Control_chart.cusum_decay: keep outside [0,1]";
  t.c_pos <- keep *. t.c_pos;
  t.c_neg <- keep *. t.c_neg
