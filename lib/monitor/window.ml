type t = {
  buf : float array;
  mutable head : int;   (* next write position *)
  mutable count : int;  (* samples currently held *)
  mutable total : int;  (* samples ever pushed *)
}

let create ~capacity =
  if capacity < 2 then invalid_arg "Window.create: capacity < 2";
  { buf = Array.make capacity 0.0; head = 0; count = 0; total = 0 }

let capacity t = Array.length t.buf

let push t x =
  if Float.is_finite x then begin
    t.buf.(t.head) <- x;
    t.head <- (t.head + 1) mod capacity t;
    if t.count < capacity t then t.count <- t.count + 1;
    t.total <- t.total + 1
  end

let count t = t.count
let total t = t.total
let full t = t.count = capacity t

let last t =
  if t.count = 0 then nan
  else t.buf.((t.head + capacity t - 1) mod capacity t)

(* Oldest-first index of the i-th held sample. *)
let index t i = (t.head + capacity t - t.count + i) mod capacity t

let mean t =
  if t.count = 0 then nan
  else begin
    let s = ref 0.0 in
    for i = 0 to t.count - 1 do
      s := !s +. t.buf.(index t i)
    done;
    !s /. float_of_int t.count
  end

let variance t =
  if t.count < 2 then nan
  else begin
    let m = mean t in
    let s = ref 0.0 in
    for i = 0 to t.count - 1 do
      let d = t.buf.(index t i) -. m in
      s := !s +. (d *. d)
    done;
    !s /. float_of_int (t.count - 1)
  end

let to_array t = Array.init t.count (fun i -> t.buf.(index t i))

let clear t =
  t.head <- 0;
  t.count <- 0
