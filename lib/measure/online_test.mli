(** The embedded thermal-noise test the paper's conclusion proposes:
    a cheap, counter-only statistic that monitors the thermal (i.e.
    genuinely entropy-bearing) jitter at run time and can "detect very
    quickly attacks targeting the entropy source".

    Principle: measure Var(s_N) with the Fig. 6 counter on a small grid
    of accumulation lengths and fit
    [f0^2 sigma_N^2 = c + a N + b N^2]: the constant absorbs the
    counter quantization floor, the quadratic term the flicker noise,
    and [b_th = a f0 / 2] is compared against a commissioning
    reference.  An attack that quenches the thermal jitter (e.g.
    frequency injection locking the two rings) collapses the estimate
    even when the total long-run jitter — dominated by flicker — still
    looks healthy.

    Physics dictates the grid: integer counting cannot resolve the
    thermal term below its quantization floor, so the grid must reach
    accumulation lengths where [a N] is comparable to one count^2
    (N of order 10^4 at the paper's jitter level — about a millisecond
    of measurement per window at 103 MHz; still cheap enough to run
    continuously in fabric). *)

type config = {
  ns : int array;       (** Accumulation-length grid (>= 4 values). *)
  windows : int;        (** Counter windows per grid point. *)
  min_fraction : float; (** Alarm when est. b_th falls below this
                            fraction of the reference. *)
}

val default_config : config
(** Grid 4096/16384/65536/262144, 128 windows each, alarm below 40%. *)

type verdict = {
  b_th_est : float;      (** Estimated thermal coefficient. *)
  sigma_est : float;     (** Estimated thermal period jitter, s. *)
  floor_est : float;     (** Fitted quantization floor, counts^2. *)
  total_var_max_n : float; (** Raw scaled variance at the largest N
                              (what a naive total-jitter test sees). *)
  pass : bool;
}

val run :
  config -> f0:float -> reference_b_th:float ->
  edges1:float array -> edges2:float array -> verdict
(** Evaluate the test on a recorded edge-stream segment.

    When telemetry is enabled every evaluation also updates the running
    registry metrics [ptrng_measure_online_runs_total],
    [ptrng_measure_online_alarms_total],
    [ptrng_measure_online_alarm_rate] and
    [ptrng_measure_online_b_th_last], so a long campaign can be
    monitored mid-flight instead of only through each final boolean.
    @raise Invalid_argument on a malformed config or a stream too
    short to fill the grid. *)

val required_cycles : config -> int
(** Osc2 cycles consumed by one evaluation. *)

val windows_for_precision :
  phase:Ptrng_noise.Psd_model.phase ->
  floor:float ->
  ns:int array ->
  f0:float ->
  rel_precision:float ->
  int
(** Feasibility analysis for the test at a given operating point: the
    number of counter windows per grid point needed so that the fitted
    thermal coefficient has relative standard error [rel_precision].

    Computed from the weighted-least-squares covariance
    [(X^T Sigma^-1 X)^-1] with the chi-square variance of each curve
    point, [Var(v_i) ~ 2 v_i^2 / (W/2)].  At the paper's jitter level
    the answer is sobering (hundreds of windows at N ~ 10^4-10^5, i.e.
    seconds of silicon time for a 25% estimate) — the proposed embedded
    test is cheap in gates but not in averaging time; see
    EXPERIMENTS.md, Ablation C. *)
