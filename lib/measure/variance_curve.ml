module Tm = Ptrng_telemetry.Registry

let points_total =
  Tm.Counter.v ~help:"Variance-curve points estimated (one per accepted N)."
    "ptrng_measure_curve_points_total"

let curve_seconds =
  Tm.Hist.v ~help:"Wall time of one variance-curve construction." ~lo:1e-6
    ~hi:1e4 "ptrng_measure_curve_seconds"

type point = {
  n : int;
  sigma2 : float;
  scaled : float;
  neff : int;
  stderr : float;
}

let log2_grid ~n_min ~n_max =
  if n_min <= 0 || n_min > n_max then invalid_arg "Variance_curve.log2_grid: bad range";
  let rec collect acc n = if n > n_max then List.rev acc else collect (n :: acc) (n * 2) in
  Array.of_list (collect [] n_min)

let log_grid ~n_min ~n_max ~per_decade =
  if n_min <= 0 || n_min > n_max then invalid_arg "Variance_curve.log_grid: bad range";
  if per_decade <= 0 then invalid_arg "Variance_curve.log_grid: per_decade <= 0";
  let lo = log10 (float_of_int n_min) and hi = log10 (float_of_int n_max) in
  let steps = int_of_float (Float.ceil ((hi -. lo) *. float_of_int per_decade)) in
  let values = ref [] in
  for i = 0 to steps do
    let v = 10.0 ** (lo +. (float_of_int i *. (hi -. lo) /. float_of_int (max 1 steps))) in
    let n = max n_min (min n_max (int_of_float (Float.round v))) in
    match !values with
    | prev :: _ when prev = n -> ()
    | _ -> values := n :: !values
  done;
  Array.of_list (List.rev !values)

let point_of_samples ~f0 ~n ~neff s =
  let sigma2 = Ptrng_stats.Descriptive.variance s in
  let stderr =
    if neff >= 2 then
      Ptrng_stats.Descriptive.standard_error_of_variance ~n:neff ~variance:sigma2
    else Float.nan
  in
  { n; sigma2; scaled = sigma2 *. f0 *. f0; neff; stderr }

(* Each accepted N is an independent pass over the series, so the grid
   is a natural task list for the domain pool: one task per N, results
   reassembled in grid order (bit-identical for every domain count). *)

let of_jitter ?domains ?(overlapping = true) ~f0 ~ns jitter =
  if f0 <= 0.0 then invalid_arg "Variance_curve.of_jitter: f0 <= 0";
  Tm.Hist.time curve_seconds (fun () ->
      let len = Array.length jitter in
      Ptrng_exec.Pool.parallel_filter_map ?domains
        (fun n ->
          if n > 0 && len >= 2 * n then begin
            let stride = if overlapping then 1 else 2 * n in
            let s = S_process.realizations ~stride ~n jitter in
            let count = Array.length s in
            if count >= 2 then begin
              let neff = if overlapping then max 2 (count / (2 * n)) else count in
              Tm.Counter.incr points_total;
              Some (point_of_samples ~f0 ~n ~neff s)
            end
            else None
          end
          else None)
        ns)

let of_counters ?domains ~edges1 ~edges2 ~f0 ~ns () =
  if f0 <= 0.0 then invalid_arg "Variance_curve.of_counters: f0 <= 0";
  Tm.Hist.time curve_seconds (fun () ->
      let cycles2 = Array.length edges2 - 1 in
      Ptrng_exec.Pool.parallel_filter_map ?domains
        (fun n ->
          if n > 0 && cycles2 / n >= 3 then begin
            let s = Counter.s_realizations ~edges1 ~edges2 ~f0 ~n in
            if Array.length s >= 2 then begin
              (* Counter windows are disjoint, but adjacent differences share
                 a window: halve the count for the error estimate. *)
              let neff = max 2 (Array.length s / 2) in
              Tm.Counter.incr points_total;
              Some (point_of_samples ~f0 ~n ~neff s)
            end
            else None
          end
          else None)
        ns)
