module Tm = Ptrng_telemetry.Registry

let points_total =
  Tm.Counter.v ~help:"Variance-curve points estimated (one per accepted N)."
    "ptrng_measure_curve_points_total"

let curve_seconds =
  Tm.Hist.v ~help:"Wall time of one variance-curve construction." ~lo:1e-6
    ~hi:1e4 "ptrng_measure_curve_seconds"

type point = {
  n : int;
  sigma2 : float;
  scaled : float;
  neff : int;
  stderr : float;
}

let log2_grid ~n_min ~n_max =
  if n_min <= 0 || n_min > n_max then invalid_arg "Variance_curve.log2_grid: bad range";
  let rec collect acc n = if n > n_max then List.rev acc else collect (n :: acc) (n * 2) in
  Array.of_list (collect [] n_min)

let log_grid ~n_min ~n_max ~per_decade =
  if n_min <= 0 || n_min > n_max then invalid_arg "Variance_curve.log_grid: bad range";
  if per_decade <= 0 then invalid_arg "Variance_curve.log_grid: per_decade <= 0";
  let lo = log10 (float_of_int n_min) and hi = log10 (float_of_int n_max) in
  let steps = int_of_float (Float.ceil ((hi -. lo) *. float_of_int per_decade)) in
  let values = ref [] in
  for i = 0 to steps do
    let v = 10.0 ** (lo +. (float_of_int i *. (hi -. lo) /. float_of_int (max 1 steps))) in
    let n = max n_min (min n_max (int_of_float (Float.round v))) in
    match !values with
    | prev :: _ when prev = n -> ()
    | _ -> values := n :: !values
  done;
  Array.of_list (List.rev !values)

let point_of_samples ~f0 ~n ~neff s =
  let sigma2 = Ptrng_stats.Descriptive.variance s in
  let stderr =
    if neff >= 2 then
      Ptrng_stats.Descriptive.standard_error_of_variance ~n:neff ~variance:sigma2
    else Float.nan
  in
  { n; sigma2; scaled = sigma2 *. f0 *. f0; neff; stderr }

(* Each accepted N is an independent pass over the series, so the grid
   is a natural task list for the domain pool: one task per N, results
   reassembled in grid order (bit-identical for every domain count). *)

let of_jitter ?domains ?(overlapping = true) ~f0 ~ns jitter =
  if f0 <= 0.0 then invalid_arg "Variance_curve.of_jitter: f0 <= 0";
  Tm.Hist.time curve_seconds (fun () ->
      let len = Array.length jitter in
      Ptrng_exec.Pool.parallel_filter_map ?domains
        (fun n ->
          if n > 0 && len >= 2 * n then begin
            let stride = if overlapping then 1 else 2 * n in
            let s = S_process.realizations ~stride ~n jitter in
            let count = Array.length s in
            if count >= 2 then begin
              let neff = if overlapping then max 2 (count / (2 * n)) else count in
              Tm.Counter.incr points_total;
              Some (point_of_samples ~f0 ~n ~neff s)
            end
            else None
          end
          else None)
        ns)

let of_counters ?domains ~f0 ~ns edges1 edges2 =
  if f0 <= 0.0 then invalid_arg "Variance_curve.of_counters: f0 <= 0";
  Tm.Hist.time curve_seconds (fun () ->
      let cycles2 = Array.length edges2 - 1 in
      Ptrng_exec.Pool.parallel_filter_map ?domains
        (fun n ->
          if n > 0 && cycles2 / n >= 3 then begin
            let s = Counter.s_realizations ~edges1 ~edges2 ~f0 ~n in
            if Array.length s >= 2 then begin
              (* Counter windows are disjoint, but adjacent differences share
                 a window: halve the count for the error estimate. *)
              let neff = max 2 (Array.length s / 2) in
              Tm.Counter.incr points_total;
              Some (point_of_samples ~f0 ~n ~neff s)
            end
            else None
          end
          else None)
        ns)

(* ------------------------------------------------------------------ *)
(* Streaming accumulators                                              *)
(* ------------------------------------------------------------------ *)

module FA = Float.Array

(* Per-slot moment state lives in parallel int/float arrays, not in
   records with mutable float fields, so the per-sample updates never
   box.  The running variance is Welford's recurrence, spelled out at
   each accumulation site (a shared helper would box the realization
   argument on every call); the batch path uses a two-pass estimator,
   so streamed and batch sigma2 agree to rounding (~1e-12 relative),
   while the realization values themselves are bit-identical (the
   cumulative sums are the same op sequence). *)

let welford_variance ~counts ~m2s s =
  let cnt = counts.(s) in
  if cnt >= 2 then FA.get m2s s /. float_of_int (cnt - 1) else Float.nan

module Jitter_acc = struct
  let periods_total =
    Tm.Counter.v
      ~help:"Oscillator periods folded into streamed S_N realizations."
      "ptrng_measure_periods_accumulated_total"

  let realizations_total =
    Tm.Counter.v ~help:"S_N realizations folded by streaming accumulators."
      "ptrng_measure_realizations_total"

  type t = {
    f0 : float;
    overlapping : bool;
    ns : int array;
    ring : FA.t;   (* cumulative jitter c(0..total), power-of-two ring *)
    mask : int;
    csum : FA.t;   (* 1-cell running cumulative sum *)
    counts : int array;
    tm_counts : int array;  (* counts already reported to telemetry *)
    means : FA.t;
    m2s : FA.t;
    mutable total : int;
  }

  let create ?(overlapping = true) ~f0 ns =
    if f0 <= 0.0 then invalid_arg "Jitter_acc.create: f0 <= 0";
    if Array.length ns = 0 then invalid_arg "Jitter_acc.create: empty grid";
    Array.iter (fun n -> if n <= 0 then invalid_arg "Jitter_acc.create: n <= 0") ns;
    let n_max = Array.fold_left max 1 ns in
    let cap = Ptrng_signal.Fft.next_pow2 ((2 * n_max) + 1) in
    let k = Array.length ns in
    {
      f0;
      overlapping;
      ns = Array.copy ns;
      ring = FA.make cap 0.0;   (* ring.(0) = c(0) = 0 *)
      mask = cap - 1;
      csum = FA.make 1 0.0;
      counts = Array.make k 0;
      tm_counts = Array.make k 0;
      means = FA.make k 0.0;
      m2s = FA.make k 0.0;
      total = 0;
    }

  let total t = t.total

  let feed t buf ~len =
    if len < 0 || len > FA.length buf then invalid_arg "Jitter_acc.feed: bad len";
    let c = ref (FA.get t.csum 0) in
    let tt = ref t.total in
    let ring = t.ring and mask = t.mask in
    let ns = t.ns in
    let k = Array.length ns in
    let overlapping = t.overlapping in
    let counts = t.counts and means = t.means and m2s = t.m2s in
    for i = 0 to len - 1 do
      (* c(t) = c(t-1) + j(t-1): same op sequence as S_process.cumulative. *)
      c := !c +. FA.unsafe_get buf i;
      incr tt;
      FA.unsafe_set ring (!tt land mask) !c;
      for s = 0 to k - 1 do
        let n = Array.unsafe_get ns s in
        let n2 = 2 * n in
        if !tt >= n2 && (overlapping || !tt mod n2 = 0) then begin
          (* The batch realization (c(i+2n) - 2 c(i+n)) + c(i), i = t-2n. *)
          let v =
            (!c -. (2.0 *. FA.unsafe_get ring ((!tt - n) land mask)))
            +. FA.unsafe_get ring ((!tt - n2) land mask)
          in
          (* welford_update, spelled out: a call would box [v] — 16
             bytes times one realization per slot per sample. *)
          let cnt0 = Array.unsafe_get counts s in
          let mean = FA.unsafe_get means s in
          let d = v -. mean in
          let mean' = mean +. (d /. float_of_int (cnt0 + 1)) in
          FA.unsafe_set m2s s (FA.unsafe_get m2s s +. (d *. (v -. mean')));
          FA.unsafe_set means s mean';
          Array.unsafe_set counts s (cnt0 + 1)
        end
      done
    done;
    FA.set t.csum 0 !c;
    t.total <- !tt;
    if !Tm.on then
      for s = 0 to k - 1 do
        let delta = t.counts.(s) - t.tm_counts.(s) in
        if delta > 0 then begin
          Tm.Counter.add periods_total (delta * t.ns.(s));
          Tm.Counter.add realizations_total delta;
          t.tm_counts.(s) <- t.counts.(s)
        end
      done

  let points t =
    let pts = ref [] in
    for s = Array.length t.ns - 1 downto 0 do
      let n = t.ns.(s) in
      let count = t.counts.(s) in
      if t.total >= 2 * n && count >= 2 then begin
        let sigma2 = welford_variance ~counts:t.counts ~m2s:t.m2s s in
        let neff = if t.overlapping then max 2 (count / (2 * n)) else count in
        let stderr =
          if neff >= 2 then
            Ptrng_stats.Descriptive.standard_error_of_variance ~n:neff
              ~variance:sigma2
          else Float.nan
        in
        Tm.Counter.incr points_total;
        pts :=
          { n; sigma2; scaled = sigma2 *. t.f0 *. t.f0; neff; stderr } :: !pts
      end
    done;
    Array.of_list !pts
end

module Counter_acc = struct
  (* Same registered handle as Counter.windows_total (registration is
     idempotent by name); the .mli of [Counter] keeps it private. *)
  let windows_total =
    Tm.Counter.v
      ~help:"Counter windows measured (each spans N Osc2 cycles)."
      "ptrng_measure_counter_windows_total"

  (* A growable floatarray FIFO of pending edge times. *)
  type ring = {
    mutable buf : FA.t;
    mutable head : int;   (* masked index of the first element *)
    mutable count : int;
  }

  let ring_create cap =
    let cap = Ptrng_signal.Fft.next_pow2 (max 16 cap) in
    { buf = FA.create cap; head = 0; count = 0 }

  let ring_grow r =
    let cap = FA.length r.buf in
    let nbuf = FA.create (2 * cap) in
    let mask = cap - 1 in
    for i = 0 to r.count - 1 do
      FA.unsafe_set nbuf i (FA.unsafe_get r.buf ((r.head + i) land mask))
    done;
    r.buf <- nbuf;
    r.head <- 0

  let ring_push r x =
    if r.count = FA.length r.buf then ring_grow r;
    let mask = FA.length r.buf - 1 in
    FA.unsafe_set r.buf ((r.head + r.count) land mask) x;
    r.count <- r.count + 1

  let ring_head r = FA.unsafe_get r.buf (r.head)

  let ring_pop r =
    r.head <- (r.head + 1) land (FA.length r.buf - 1);
    r.count <- r.count - 1

  type t = {
    f0 : float;
    ns : int array;
    r1 : ring;
    r2 : ring;
    time1 : FA.t;  (* 1-cell cumulative osc1 time (last pushed edge) *)
    time2 : FA.t;
    mutable q : int;         (* osc1 edges consumed by the merge *)
    mutable periods2 : int;  (* osc2 periods fed *)
    rem : int array;         (* osc2 edges until each slot's boundary *)
    started : bool array;
    prev_q : int array;
    last_count : int array;
    has_last : bool array;
    closed : int array;
    tm_closed : int array;
    scount : int array;
    means : FA.t;
    m2s : FA.t;
    mutable finalized : bool;
  }

  let create ~f0 ~ns =
    if f0 <= 0.0 then invalid_arg "Counter_acc.create: f0 <= 0";
    if Array.length ns = 0 then invalid_arg "Counter_acc.create: empty grid";
    Array.iter (fun n -> if n <= 0 then invalid_arg "Counter_acc.create: n <= 0") ns;
    let k = Array.length ns in
    let t =
      {
        f0;
        ns = Array.copy ns;
        r1 = ring_create 16384;
        r2 = ring_create 16384;
        time1 = FA.make 1 0.0;
        time2 = FA.make 1 0.0;
        q = 0;
        periods2 = 0;
        rem = Array.make k 0;
        started = Array.make k false;
        prev_q = Array.make k 0;
        last_count = Array.make k 0;
        has_last = Array.make k false;
        closed = Array.make k 0;
        tm_closed = Array.make k 0;
        scount = Array.make k 0;
        means = FA.make k 0.0;
        m2s = FA.make k 0.0;
        finalized = false;
      }
    in
    (* The edge streams start with the shared t = 0 rising edge, as in
       Oscillator.edges_of_periods. *)
    ring_push t.r1 0.0;
    ring_push t.r2 0.0;
    t

  (* An osc2 edge arrives (in merged time order): window bookkeeping for
     every slot whose boundary this edge is.  Counts are differences of
     the shared monotone osc1-edge count q, so a boundary at time T
     charges an osc1 edge at exactly T to the next window — the batch
     path's strict [t < t_stop] counting. *)
  let osc2_edge t =
    let k = Array.length t.ns in
    for s = 0 to k - 1 do
      if Array.unsafe_get t.rem s = 0 then begin
        if Array.unsafe_get t.started s then begin
          let cnt = t.q - Array.unsafe_get t.prev_q s in
          Array.unsafe_set t.closed s (Array.unsafe_get t.closed s + 1);
          if Array.unsafe_get t.has_last s then begin
            let v =
              float_of_int (cnt - Array.unsafe_get t.last_count s) /. t.f0
            in
            (* welford_update, spelled out to keep [v] unboxed: small-N
               slots close a window every few samples. *)
            let cnt0 = Array.unsafe_get t.scount s in
            let mean = FA.unsafe_get t.means s in
            let d = v -. mean in
            let mean' = mean +. (d /. float_of_int (cnt0 + 1)) in
            FA.unsafe_set t.m2s s (FA.unsafe_get t.m2s s +. (d *. (v -. mean')));
            FA.unsafe_set t.means s mean';
            Array.unsafe_set t.scount s (cnt0 + 1)
          end;
          Array.unsafe_set t.last_count s cnt;
          Array.unsafe_set t.has_last s true
        end
        else Array.unsafe_set t.started s true;
        Array.unsafe_set t.prev_q s t.q;
        Array.unsafe_set t.rem s (Array.unsafe_get t.ns s)
      end;
      Array.unsafe_set t.rem s (Array.unsafe_get t.rem s - 1)
    done

  (* Drain every event whose global time order is settled: an osc2
     boundary can only close once an osc1 edge at the same or later
     time has been seen (osc1 edges are monotone). *)
  (* The two loops below spell out ring_head/ring_pop/ring_push: a call
     per edge would box the float crossing the boundary, and the merge
     visits every edge of both streams. *)
  let merge t =
    let r1 = t.r1 and r2 = t.r2 in
    while r1.count > 0 && r2.count > 0 do
      let h1 = FA.unsafe_get r1.buf r1.head in
      let h2 = FA.unsafe_get r2.buf r2.head in
      if h2 <= h1 then begin
        r2.head <- (r2.head + 1) land (FA.length r2.buf - 1);
        r2.count <- r2.count - 1;
        osc2_edge t
      end
      else begin
        r1.head <- (r1.head + 1) land (FA.length r1.buf - 1);
        r1.count <- r1.count - 1;
        t.q <- t.q + 1
      end
    done

  let feed t ~p1 ~p2 ~len =
    if t.finalized then invalid_arg "Counter_acc.feed: already finalized";
    if len < 0 || len > FA.length p1 || len > FA.length p2 then
      invalid_arg "Counter_acc.feed: bad len";
    let r1 = t.r1 and r2 = t.r2 in
    let tm1 = ref (FA.get t.time1 0) and tm2 = ref (FA.get t.time2 0) in
    for i = 0 to len - 1 do
      (* Same op sequence as edges_of_periods: e(k+1) = e(k) + p(k). *)
      tm1 := !tm1 +. FA.unsafe_get p1 i;
      if r1.count = FA.length r1.buf then ring_grow r1;
      FA.unsafe_set r1.buf
        ((r1.head + r1.count) land (FA.length r1.buf - 1))
        !tm1;
      r1.count <- r1.count + 1;
      tm2 := !tm2 +. FA.unsafe_get p2 i;
      if r2.count = FA.length r2.buf then ring_grow r2;
      FA.unsafe_set r2.buf
        ((r2.head + r2.count) land (FA.length r2.buf - 1))
        !tm2;
      r2.count <- r2.count + 1
    done;
    FA.set t.time1 0 !tm1;
    FA.set t.time2 0 !tm2;
    t.periods2 <- t.periods2 + len;
    merge t;
    if !Tm.on then
      for s = 0 to Array.length t.ns - 1 do
        let delta = t.closed.(s) - t.tm_closed.(s) in
        if delta > 0 then begin
          Tm.Counter.add windows_total delta;
          t.tm_closed.(s) <- t.closed.(s)
        end
      done

  (* Close out the stream exactly as the batch path truncates: windows
     whose end boundary falls after the last osc1 edge are dropped. *)
  let finalize t =
    if not t.finalized then begin
      t.finalized <- true;
      let t_limit = FA.get t.time1 0 in
      while t.r2.count > 0 && ring_head t.r2 <= t_limit do
        if t.r1.count > 0 && ring_head t.r1 < ring_head t.r2 then begin
          ring_pop t.r1;
          t.q <- t.q + 1
        end
        else begin
          ring_pop t.r2;
          osc2_edge t
        end
      done
    end

  let points t =
    finalize t;
    let pts = ref [] in
    for s = Array.length t.ns - 1 downto 0 do
      let n = t.ns.(s) in
      if t.periods2 / n >= 3 && t.scount.(s) >= 2 then begin
        let sigma2 = welford_variance ~counts:t.scount ~m2s:t.m2s s in
        let neff = max 2 (t.scount.(s) / 2) in
        let stderr =
          Ptrng_stats.Descriptive.standard_error_of_variance ~n:neff
            ~variance:sigma2
        in
        Tm.Counter.incr points_total;
        pts :=
          { n; sigma2; scaled = sigma2 *. t.f0 *. t.f0; neff; stderr } :: !pts
      end
    done;
    Array.of_list !pts
end
