(** Estimation of the accumulated-jitter variance curve
    [sigma_N^2 = Var(s_N)] over a grid of accumulation lengths N — the
    data behind the paper's Fig. 7. *)

type point = {
  n : int;           (** Accumulation length N. *)
  sigma2 : float;    (** Estimated Var(s_N), s^2. *)
  scaled : float;    (** The paper's plotted quantity f0^2 sigma_N^2. *)
  neff : int;        (** Independent-equivalent sample count
                         (realizations / 2N for overlapping data). *)
  stderr : float;    (** Standard error of [sigma2] from [neff]. *)
}

val log2_grid : n_min:int -> n_max:int -> int array
(** Octave-spaced N values [n_min, 2 n_min, ... <= n_max].
    @raise Invalid_argument unless [0 < n_min <= n_max]. *)

val log_grid : n_min:int -> n_max:int -> per_decade:int -> int array
(** Log-spaced grid with [per_decade] points per decade (deduplicated,
    increasing). *)

val of_jitter :
  ?domains:int ->
  ?overlapping:bool -> f0:float -> ns:int array -> float array -> point array
(** Ideal (quantization-free) estimator from a relative-jitter series.
    Overlapping (default) uses every starting point and divides the
    sample count by 2N for the error estimate; non-overlapping uses
    disjoint realizations.  Grid entries with fewer than 2 realizations
    are skipped.  Each grid entry is an independent task on a
    {!Ptrng_exec.Pool}; the result is bit-identical for every
    [?domains] value. *)

val of_counters :
  ?domains:int ->
  f0:float -> ns:int array -> float array -> float array -> point array
(** [of_counters ~f0 ~ns edges1 edges2] is the counter-based estimator
    (paper eq. 12), including real quantization effects, from the two
    oscillators' rising-edge times.  Parallelised over the grid like
    {!of_jitter}. *)

(** Streaming estimator from a relative-jitter stream: feed chunks of
    any size, read {!Jitter_acc.points} at the end.  Realization values
    are bit-identical to {!of_jitter} (same cumulative-sum op
    sequence); the variance uses Welford's recurrence, so [sigma2]
    matches the batch two-pass estimate to rounding (~1e-12 relative).
    Memory is O(2 max N + grid), independent of the stream length. *)
module Jitter_acc : sig
  type t
  (** Accumulator state: a power-of-two ring of cumulative sums plus
      per-N Welford moments.  Not thread-safe. *)

  val create : ?overlapping:bool -> f0:float -> int array -> t
  (** [create ~f0 ns] starts an empty accumulator over grid [ns].
      [overlapping] (default true) matches {!of_jitter}'s realization
      stride. @raise Invalid_argument on non-positive [f0] or grid
      entries, or an empty grid. *)

  val feed : t -> Float.Array.t -> len:int -> unit
  (** [feed t buf ~len] folds [buf.(0 .. len-1)] — the next [len]
      relative-jitter samples — into every grid slot.
      @raise Invalid_argument if [len] exceeds the buffer. *)

  val total : t -> int
  (** Samples folded so far. *)

  val points : t -> point array
  (** The curve from the data so far (the accumulator remains usable).
      Slots with fewer than 2 realizations are skipped, as in
      {!of_jitter}. *)
end

(** Streaming counter-based estimator (paper eq. 12): feed period
    chunks of both oscillators, read {!Counter_acc.points} at the end.
    Edge times and window counts replay the batch
    {!Oscillator.edges_of_periods} + {!of_counters} pipeline exactly
    (same op sequences, same strict-inequality window counting, same
    truncation at the last Osc1 edge), so the s-values are
    bit-identical and [sigma2] agrees to Welford-vs-two-pass
    rounding. *)
module Counter_acc : sig
  type t
  (** Accumulator state: two pending-edge FIFOs, the shared Osc1 edge
      count, and per-N window/Welford state.  Not thread-safe. *)

  val create : f0:float -> ns:int array -> t
  (** [create ~f0 ~ns] starts an empty accumulator over grid [ns].
      @raise Invalid_argument on non-positive [f0] or grid entries, or
      an empty grid. *)

  val feed : t -> p1:Float.Array.t -> p2:Float.Array.t -> len:int -> unit
  (** [feed t ~p1 ~p2 ~len] appends the next [len] periods of each
      oscillator (seconds; both streams advance together).
      @raise Invalid_argument if [len] exceeds either buffer or the
      accumulator is finalized. *)

  val points : t -> point array
  (** Finalizes the stream (drops windows not covered by Osc1 edges,
      like the batch path) and returns the curve.  Further {!feed}
      calls raise; [points] may be called again. *)
end
