(** Estimation of the accumulated-jitter variance curve
    [sigma_N^2 = Var(s_N)] over a grid of accumulation lengths N — the
    data behind the paper's Fig. 7. *)

type point = {
  n : int;           (** Accumulation length N. *)
  sigma2 : float;    (** Estimated Var(s_N), s^2. *)
  scaled : float;    (** The paper's plotted quantity f0^2 sigma_N^2. *)
  neff : int;        (** Independent-equivalent sample count
                         (realizations / 2N for overlapping data). *)
  stderr : float;    (** Standard error of [sigma2] from [neff]. *)
}

val log2_grid : n_min:int -> n_max:int -> int array
(** Octave-spaced N values [n_min, 2 n_min, ... <= n_max].
    @raise Invalid_argument unless [0 < n_min <= n_max]. *)

val log_grid : n_min:int -> n_max:int -> per_decade:int -> int array
(** Log-spaced grid with [per_decade] points per decade (deduplicated,
    increasing). *)

val of_jitter :
  ?domains:int ->
  ?overlapping:bool -> f0:float -> ns:int array -> float array -> point array
(** Ideal (quantization-free) estimator from a relative-jitter series.
    Overlapping (default) uses every starting point and divides the
    sample count by 2N for the error estimate; non-overlapping uses
    disjoint realizations.  Grid entries with fewer than 2 realizations
    are skipped.  Each grid entry is an independent task on a
    {!Ptrng_exec.Pool}; the result is bit-identical for every
    [?domains] value. *)

val of_counters :
  ?domains:int ->
  edges1:float array ->
  edges2:float array ->
  f0:float ->
  ns:int array ->
  unit ->
  point array
(** Counter-based estimator (paper eq. 12), including real quantization
    effects.  Parallelised over the grid like {!of_jitter}. *)
