module Tm = Ptrng_telemetry.Registry

let periods_total =
  Tm.Counter.v
    ~help:"Oscillator periods folded into S_N realizations (count x N per call)."
    "ptrng_measure_periods_accumulated_total"

let realizations_total =
  Tm.Counter.v ~help:"S_N realizations extracted from jitter series."
    "ptrng_measure_realizations_total"

let accumulation_n =
  Tm.Hist.v ~help:"Accumulation length N of each realizations call." ~lo:1.0
    ~hi:1e8 ~buckets_per_decade:3 "ptrng_measure_accumulation_n"

let cumulative j =
  let n = Array.length j in
  let c = Array.make (n + 1) 0.0 in
  for k = 0 to n - 1 do
    c.(k + 1) <- c.(k) +. j.(k)
  done;
  c

let realizations ?(stride = 1) ~n j =
  if n <= 0 then invalid_arg "S_process.realizations: n <= 0";
  if stride <= 0 then invalid_arg "S_process.realizations: stride <= 0";
  let len = Array.length j in
  if len < 2 * n then invalid_arg "S_process.realizations: series shorter than 2n";
  let c = cumulative j in
  let count = ((len - (2 * n)) / stride) + 1 in
  if !Tm.on then begin
    Tm.Counter.add periods_total (count * n);
    Tm.Counter.add realizations_total count;
    Tm.Hist.observe accumulation_n (float_of_int n)
  end;
  Array.init count (fun k ->
      let i = k * stride in
      c.(i + (2 * n)) -. (2.0 *. c.(i + n)) +. c.(i))

let relative_jitter ~periods1 ~periods2 =
  let n = min (Array.length periods1) (Array.length periods2) in
  Array.init n (fun k -> periods1.(k) -. periods2.(k))
