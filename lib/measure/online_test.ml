module Tm = Ptrng_telemetry.Registry

(* Running counters so a long acquisition campaign can be monitored
   mid-flight (scrape the registry) instead of waiting for the final
   boolean of each evaluation. *)
let runs_total =
  Tm.Counter.v ~help:"Online thermal-noise test evaluations."
    "ptrng_measure_online_runs_total"

let alarms_total =
  Tm.Counter.v ~help:"Online test evaluations that raised an alarm."
    "ptrng_measure_online_alarms_total"

let alarm_rate =
  Tm.Gauge.v ~help:"alarms_total / runs_total so far (0 when no run yet)."
    "ptrng_measure_online_alarm_rate"

let b_th_gauge =
  Tm.Gauge.v ~help:"Most recent estimated thermal coefficient b_th."
    "ptrng_measure_online_b_th_last"

type config = {
  ns : int array;
  windows : int;
  min_fraction : float;
}

let default_config =
  { ns = [| 4096; 16384; 65536; 262144 |]; windows = 128; min_fraction = 0.4 }

type verdict = {
  b_th_est : float;
  sigma_est : float;
  floor_est : float;
  total_var_max_n : float;
  pass : bool;
}

let required_cycles cfg =
  Array.fold_left (fun acc n -> acc + (n * cfg.windows)) 0 cfg.ns

let check_config cfg =
  if Array.length cfg.ns < 4 then invalid_arg "Online_test: need >= 4 grid points";
  Array.iter (fun n -> if n <= 0 then invalid_arg "Online_test: non-positive N") cfg.ns;
  if cfg.windows < 8 then invalid_arg "Online_test: need >= 8 windows";
  if cfg.min_fraction <= 0.0 || cfg.min_fraction >= 1.0 then
    invalid_arg "Online_test: min_fraction outside (0,1)"

let windows_for_precision ~phase ~floor ~ns ~f0 ~rel_precision =
  if rel_precision <= 0.0 then invalid_arg "Online_test: rel_precision <= 0";
  if Array.length ns < 3 then invalid_arg "Online_test: need >= 3 grid points";
  let open Ptrng_noise.Psd_model in
  if phase.b_th <= 0.0 then invalid_arg "Online_test: b_th <= 0";
  let a = 2.0 *. phase.b_th /. f0 in
  let b = 8.0 *. log 2.0 *. phase.b_fl /. (f0 *. f0) in
  (* Weighted normal equations with unit window count; sigma(a) then
     scales as 1/sqrt(W/2). *)
  let xtx = Ptrng_stats.Matrix.create ~rows:3 ~cols:3 in
  Array.iter
    (fun n ->
      let fn = float_of_int n in
      let v = floor +. (a *. fn) +. (b *. fn *. fn) in
      let var1 = 2.0 *. v *. v in
      let cols = [| fn; fn *. fn; 1.0 |] in
      for i = 0 to 2 do
        for j = 0 to 2 do
          Ptrng_stats.Matrix.set xtx i j
            (Ptrng_stats.Matrix.get xtx i j +. (cols.(i) *. cols.(j) /. var1))
        done
      done)
    ns;
  let cov = Ptrng_stats.Matrix.inverse xtx in
  let sigma_a_w2 = sqrt (Ptrng_stats.Matrix.get cov 0 0) in
  (* Var(a) at W windows is Var(a)|_{neff=1} / (W/2). *)
  let needed = 2.0 *. (sigma_a_w2 /. (rel_precision *. a)) ** 2.0 in
  int_of_float (Float.ceil needed)

let run cfg ~f0 ~reference_b_th ~edges1 ~edges2 =
  check_config cfg;
  if f0 <= 0.0 then invalid_arg "Online_test.run: f0 <= 0";
  if reference_b_th <= 0.0 then invalid_arg "Online_test.run: reference_b_th <= 0";
  let points =
    Array.map
      (fun n ->
        let available = (Array.length edges2 - 1) / n in
        if available < cfg.windows then
          invalid_arg "Online_test.run: edge stream too short for the grid";
        (* A real on-line block test works on a fixed window budget. *)
        let edges2 = Array.sub edges2 0 ((cfg.windows * n) + 1) in
        let curve = Variance_curve.of_counters ~f0 ~ns:[| n |] edges1 edges2 in
        if Array.length curve <> 1 then
          invalid_arg "Online_test.run: edge stream too short for the grid";
        curve.(0))
      cfg.ns
  in
  let fit = Fit.fit ~with_floor:true ~f0 points in
  let phase = Fit.phase_of fit in
  let b_th_est = phase.Ptrng_noise.Psd_model.b_th in
  let sigma_est = if b_th_est > 0.0 then sqrt (b_th_est /. (f0 ** 3.0)) else 0.0 in
  let last = points.(Array.length points - 1) in
  let pass = b_th_est >= cfg.min_fraction *. reference_b_th in
  if !Tm.on then begin
    Tm.Counter.incr runs_total;
    if not pass then Tm.Counter.incr alarms_total;
    Tm.Gauge.set alarm_rate
      (float_of_int (Tm.Counter.value alarms_total)
      /. float_of_int (Tm.Counter.value runs_total));
    Tm.Gauge.set b_th_gauge b_th_est;
    Ptrng_telemetry.Event_log.emit ~kind:"online_test"
      [
        ("b_th_est", Ptrng_telemetry.Json.num b_th_est);
        ("pass", Ptrng_telemetry.Json.Bool pass);
      ]
  end;
  {
    b_th_est;
    sigma_est;
    floor_est = fit.c;
    total_var_max_n = last.Variance_curve.scaled;
    pass;
  }
