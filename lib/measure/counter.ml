let windows_total =
  Ptrng_telemetry.Registry.Counter.v
    ~help:"Counter windows measured (each spans N Osc2 cycles)."
    "ptrng_measure_counter_windows_total"

let q_counts ~edges1 ~edges2 ~n =
  if n <= 0 then invalid_arg "Counter.q_counts: n <= 0";
  let m1 = Array.length edges1 in
  if m1 < 2 then invalid_arg "Counter.q_counts: osc1 stream too short";
  let cycles2 = Array.length edges2 - 1 in
  (* Keep only windows fully covered by Osc1's edge stream — a
     truncated final window would register a deficit of counts. *)
  let t_limit = edges1.(m1 - 1) in
  let windows = ref (cycles2 / n) in
  while !windows > 0 && edges2.(!windows * n) > t_limit do
    decr windows
  done;
  let windows = !windows in
  if windows < 2 then invalid_arg "Counter.q_counts: fewer than 2n covered Osc2 cycles";
  Ptrng_telemetry.Registry.Counter.add windows_total windows;
  let counts = Array.make windows 0 in
  let p = ref 0 in
  for w = 0 to windows - 1 do
    let t_start = edges2.(w * n) and t_stop = edges2.((w + 1) * n) in
    while !p < m1 && edges1.(!p) < t_start do
      incr p
    done;
    let q = ref 0 in
    while !p < m1 && edges1.(!p) < t_stop do
      incr q;
      incr p
    done;
    counts.(w) <- !q
  done;
  counts

let s_of_counts ~f0 counts =
  if f0 <= 0.0 then invalid_arg "Counter.s_of_counts: f0 <= 0";
  let w = Array.length counts in
  if w < 2 then invalid_arg "Counter.s_of_counts: need >= 2 windows";
  Array.init (w - 1) (fun i -> float_of_int (counts.(i + 1) - counts.(i)) /. f0)

let s_realizations ~edges1 ~edges2 ~f0 ~n =
  s_of_counts ~f0 (q_counts ~edges1 ~edges2 ~n)
