(** Epsilon-based float comparison helpers.

    Exact float equality ([=] on floats) is flagged by ptrng-lint rule
    R2 in the measurement/model layers: it silently turns into a
    tolerance bug the moment a value arrives through one more
    arithmetic step.  These helpers make the intended tolerance
    explicit.  All predicates return [false] for NaN operands (every
    comparison with NaN is false), so callers must handle non-finite
    inputs separately when they can occur. *)

val default_eps : float
(** [1e-12] — absolute tolerance used when [?eps] is omitted. *)

val near_zero : ?eps:float -> float -> bool
(** [near_zero x] is [Float.abs x < eps].  Use instead of [x = 0.0]
    guards in front of divisions or degenerate-case dispatches: values
    small enough to underflow downstream are handled like zero instead
    of producing inf/NaN. *)

val approx_eq : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_eq a b] is [|a - b| <= atol + rtol * max |a| |b|] (the
    numpy [isclose] shape); [rtol] defaults to [1e-9], [atol] to
    {!default_eps}. *)

val safe_div : ?eps:float -> default:float -> float -> float -> float
(** [safe_div ~default num den] is [num /. den], or [default] when
    [den] is {!near_zero} — a total division for ratio metrics where a
    degenerate denominator has a meaningful fallback. *)
