(** Descriptive statistics on float arrays.

    All estimators are two-pass (numerically stable) and raise
    [Invalid_argument] on inputs too short to define them. *)

val mean : float array -> float
(** Arithmetic mean; needs n >= 1. *)

val variance : ?mean:float -> float array -> float
(** Unbiased sample variance (n-1 denominator); needs n >= 2. *)

val variance_biased : ?mean:float -> float array -> float
(** Population variance (n denominator); needs n >= 1. *)

val std : ?mean:float -> float array -> float
(** Square root of the unbiased {!variance}. *)

val skewness : float array -> float
(** Sample skewness (third standardised moment); needs n >= 3. *)

val kurtosis_excess : float array -> float
(** Sample excess kurtosis (fourth standardised moment minus 3);
    needs n >= 4. *)

val min_max : float array -> float * float
(** Smallest and largest sample. *)

val median : float array -> float
(** [quantile x 0.5]. *)

val quantile : float array -> float -> float
(** [quantile x p] for p in [0,1], linear interpolation of order
    statistics (type-7). *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val standard_error_of_variance : n:int -> variance:float -> float
(** Standard error of the sample variance of n iid Gaussian samples:
    [variance * sqrt (2 / (n-1))]. *)
