(** Fixed-width histograms. *)

type t = {
  edges : float array;  (** [bins + 1] bin boundaries, increasing. *)
  counts : int array;   (** Occupancy of each bin. *)
  total : int;          (** Total samples binned (outliers clamped to end bins). *)
}

val make : bins:int -> ?range:float * float -> float array -> t
(** [make ~bins ?range x] builds a histogram; [range] defaults to the
    data min/max. @raise Invalid_argument for [bins <= 0], empty data,
    or an empty range. *)

val density : t -> float array
(** Counts normalised to a probability density over each bin. *)

val bin_centers : t -> float array
(** Midpoint of each bin, for plotting against {!density}. *)
