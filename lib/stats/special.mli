(** Special functions needed by the statistical machinery: log-gamma
    (Lanczos), regularised incomplete gamma (series + continued
    fraction), the error function, and inverses. *)

val log_gamma : float -> float
(** Natural log of the Gamma function for x > 0. *)

val gamma_p : a:float -> x:float -> float
(** Regularised lower incomplete gamma P(a, x), a > 0, x >= 0. *)

val gamma_q : a:float -> x:float -> float
(** Regularised upper incomplete gamma Q(a, x) = 1 - P(a, x). *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function [1 - erf x], accurate for large x. *)

val normal_cdf : float -> float
(** Standard normal CDF. *)

val normal_sf : float -> float
(** Standard normal survival function, accurate in the upper tail. *)

val normal_ppf : float -> float
(** Inverse standard normal CDF (Acklam's rational approximation with a
    Newton polish). @raise Invalid_argument if p outside (0,1). *)

val chi2_cdf : df:float -> float -> float
(** Chi-squared CDF with [df] degrees of freedom. *)

val chi2_sf : df:float -> float -> float
(** Chi-squared survival function with [df] degrees of freedom. *)

val ks_sf : float -> float
(** Kolmogorov distribution survival Q_KS(lambda)
    = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2). *)
