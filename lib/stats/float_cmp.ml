let default_eps = 1e-12

let near_zero ?(eps = default_eps) x = Float.abs x < eps

let approx_eq ?(rtol = 1e-9) ?(atol = default_eps) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let safe_div ?eps ~default num den =
  if near_zero ?eps den then default else num /. den
