(** Small dense matrices for least-squares fitting.

    Row-major storage; sized for the handful-of-parameters regression
    problems in this library, not for large linear algebra. *)

type t
(** A dense matrix of floats. *)

val create : rows:int -> cols:int -> t
(** Zero matrix. @raise Invalid_argument on non-positive dimensions. *)

val of_rows : float array array -> t
(** Build from row arrays; all rows must have equal length. *)

val rows : t -> int
(** Number of rows. *)

val cols : t -> int
(** Number of columns. *)

val get : t -> int -> int -> float
(** [get m i j] is element (i, j), zero-based. *)

val set : t -> int -> int -> float -> unit
(** [set m i j v] writes element (i, j) in place. *)

val copy : t -> t
(** Independent copy of the storage. *)

val identity : int -> t
(** [identity n] is the n-by-n identity. *)

val transpose : t -> t
(** Fresh transposed matrix. *)

val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on dimension mismatch. *)

val mul_vec : t -> float array -> float array
(** Matrix-vector product.
    @raise Invalid_argument on dimension mismatch. *)

val solve_lu : t -> float array -> float array
(** [solve_lu a b] solves the square system [a x = b] by LU
    decomposition with partial pivoting.
    @raise Failure on singular systems. *)

val least_squares : t -> float array -> float array
(** [least_squares a b] minimises ||a x - b||_2 via Householder QR;
    requires [rows a >= cols a] and full column rank.
    @raise Failure on rank deficiency. *)

val inverse : t -> t
(** Matrix inverse via LU; used for parameter covariance in fits. *)
