(* ptrng-lint: rule-driven static analyzer over dune's .cmt/.cmti
   artifacts.  See docs/STATIC_ANALYSIS.md.

   Usage:
     ptrng-lint [--root DIR] [--baseline FILE] [--update-baseline]
                [--prune-baseline] [--rules R1,R3] [--json-out FILE]
                [--sarif-out FILE] [--graph-out FILE] [--gate]
                [--summary] [--quiet] [--list]
     ptrng-lint --check-sarif FILE

   --root defaults to "." and falls back to _build/default when the
   tree under "." holds no annotation artifacts, so both `dune exec`
   from the repo root and the @lint dune action (cwd _build/default)
   work unadorned.  Exit code: 1 on any non-baselined finding when
   --gate is given (and on usage/IO errors), 0 otherwise. *)

module A = Ptrng_analysis

let usage () =
  prerr_endline
    "usage: ptrng-lint [--root DIR] [--baseline FILE] [--update-baseline]\n\
    \                  [--prune-baseline] [--rules R1,R3|all] [--json-out FILE]\n\
    \                  [--sarif-out FILE] [--graph-out FILE] [--gate]\n\
    \                  [--summary] [--quiet] [--list]\n\
    \       ptrng-lint --check-sarif FILE";
  exit 1

let () =
  let root = ref "." in
  let baseline_path = ref None in
  let update_baseline = ref false in
  let prune_baseline = ref false in
  let rules_spec = ref "all" in
  let json_out = ref None in
  let sarif_out = ref None in
  let graph_out = ref None in
  let check_sarif = ref None in
  let gate = ref false in
  let summary_only = ref false in
  let quiet = ref false in
  let list_rules = ref false in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest -> root := v; parse rest
    | "--baseline" :: v :: rest -> baseline_path := Some v; parse rest
    | "--update-baseline" :: rest -> update_baseline := true; parse rest
    | "--prune-baseline" :: rest -> prune_baseline := true; parse rest
    | "--rules" :: v :: rest -> rules_spec := v; parse rest
    | "--json-out" :: v :: rest -> json_out := Some v; parse rest
    | "--sarif-out" :: v :: rest -> sarif_out := Some v; parse rest
    | "--graph-out" :: v :: rest -> graph_out := Some v; parse rest
    | "--check-sarif" :: v :: rest -> check_sarif := Some v; parse rest
    | "--gate" :: rest -> gate := true; parse rest
    | "--summary" :: rest -> summary_only := true; parse rest
    | "--quiet" :: rest -> quiet := true; parse rest
    | "--list" :: rest -> list_rules := true; parse rest
    | arg :: _ ->
      Printf.eprintf "ptrng-lint: unknown argument %s\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));

  (* --check-sarif is a standalone mode: validate a SARIF file this
     tool (or anything else) wrote, without loading any artifacts. *)
  (match !check_sarif with
  | None -> ()
  | Some path ->
    (match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e ->
      Printf.eprintf "ptrng-lint: cannot read %s: %s\n" path e;
      exit 1
    | contents -> (
      match Ptrng_telemetry.Json.of_string contents with
      | exception Failure e ->
        Printf.eprintf "ptrng-lint: %s is not JSON: %s\n" path e;
        exit 1
      | j -> (
        match A.Sarif.validate j with
        | Ok n ->
          Printf.printf "ptrng-lint: %s is structurally valid SARIF %s (%d results)\n"
            path "2.1.0" n;
          exit 0
        | Error e ->
          Printf.eprintf "ptrng-lint: %s failed SARIF validation: %s\n" path e;
          exit 1))));

  if !list_rules then begin
    List.iter
      (fun (r : A.Rule.t) ->
        Printf.printf "%s  %-18s %-7s  %s\n" r.id r.name
          (A.Finding.severity_name r.severity)
          r.doc)
      A.Rules.all;
    exit 0
  end;

  let rules =
    match A.Rules.select !rules_spec with
    | Ok rules -> rules
    | Error e ->
      Printf.eprintf "ptrng-lint: %s\n" e;
      exit 1
  in

  let scan_dirs = [ "lib"; "bin"; "bench" ] in
  let loader =
    let l = A.Loader.load_dirs ~root:!root scan_dirs in
    if l.units <> [] then l
    else
      (* From the repo root the artifacts live under _build/default. *)
      let fallback = Filename.concat !root "_build/default" in
      A.Loader.load_dirs ~root:fallback scan_dirs
  in
  if loader.units = [] then begin
    Printf.eprintf
      "ptrng-lint: no .cmt/.cmti artifacts under %s — run `dune build @check` \
       first\n"
      !root;
    exit 1
  end;

  let baseline =
    match !baseline_path with
    | None -> A.Baseline.empty
    | Some path -> (
      match A.Baseline.load ~path with
      | Ok b -> b
      | Error e ->
        Printf.eprintf "ptrng-lint: cannot load baseline %s: %s\n" path e;
        exit 1)
  in

  let report, all = A.Engine.lint ~rules ~baseline loader in

  (match !graph_out with
  | None -> ()
  | Some path ->
    let graph = A.Callgraph.build loader in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Ptrng_telemetry.Json.to_string_pretty (A.Callgraph.to_json graph));
        Out_channel.output_char oc '\n'));

  if !prune_baseline then begin
    match !baseline_path with
    | None ->
      prerr_endline "ptrng-lint: --prune-baseline needs --baseline FILE";
      exit 1
    | Some path -> (
      let next, pruned = A.Baseline.prune baseline all in
      match A.Baseline.save ~path next with
      | Ok () ->
        List.iter
          (fun (fp, n) ->
            Printf.printf "ptrng-lint: pruned %d stale occurrence(s) of %s\n" n fp)
          pruned;
        Printf.printf
          "ptrng-lint: baseline %s pruned %d occurrence(s), now absorbs %d\n"
          path
          (List.fold_left (fun acc (_, n) -> acc + n) 0 pruned)
          (A.Baseline.count next);
        exit 0
      | Error e ->
        Printf.eprintf "ptrng-lint: cannot write baseline %s: %s\n" path e;
        exit 1)
  end;

  if !update_baseline then begin
    match !baseline_path with
    | None ->
      prerr_endline "ptrng-lint: --update-baseline needs --baseline FILE";
      exit 1
    | Some path -> (
      let next = A.Baseline.of_findings ~prev:baseline all in
      match A.Baseline.save ~path next with
      | Ok () ->
        Printf.printf "ptrng-lint: baseline %s now absorbs %d finding(s)\n"
          path (A.Baseline.count next);
        exit 0
      | Error e ->
        Printf.eprintf "ptrng-lint: cannot write baseline %s: %s\n" path e;
        exit 1)
  end;

  (match !json_out with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Ptrng_telemetry.Json.to_string_pretty (A.Report.to_json report));
        Out_channel.output_char oc '\n'));

  (match !sarif_out with
  | None -> ()
  | Some path ->
    let sarif = A.Sarif.of_report ~rules report in
    (* Never emit a document the gate would reject. *)
    (match A.Sarif.validate sarif with
    | Ok _ -> ()
    | Error e ->
      Printf.eprintf "ptrng-lint: internal error: emitted SARIF invalid: %s\n" e;
      exit 1);
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Ptrng_telemetry.Json.to_string_pretty sarif);
        Out_channel.output_char oc '\n'));

  if !summary_only then print_endline (A.Report.summary_line report)
  else if not !quiet then Format.printf "%a" A.Report.pp report;

  if !gate && report.findings <> [] then exit 1
