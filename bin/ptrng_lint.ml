(* ptrng-lint: rule-driven static analyzer over dune's .cmt/.cmti
   artifacts.  See docs/STATIC_ANALYSIS.md.

   Usage:
     ptrng-lint [--root DIR] [--baseline FILE] [--update-baseline]
                [--rules R1,R3] [--json-out FILE] [--gate] [--summary]
                [--quiet] [--list]

   --root defaults to "." and falls back to _build/default when the
   tree under "." holds no annotation artifacts, so both `dune exec`
   from the repo root and the @lint dune action (cwd _build/default)
   work unadorned.  Exit code: 1 on any non-baselined finding when
   --gate is given (and on usage/IO errors), 0 otherwise. *)

module A = Ptrng_analysis

let usage () =
  prerr_endline
    "usage: ptrng-lint [--root DIR] [--baseline FILE] [--update-baseline]\n\
    \                  [--rules R1,R3|all] [--json-out FILE] [--gate]\n\
    \                  [--summary] [--quiet] [--list]";
  exit 1

let () =
  let root = ref "." in
  let baseline_path = ref None in
  let update_baseline = ref false in
  let rules_spec = ref "all" in
  let json_out = ref None in
  let gate = ref false in
  let summary_only = ref false in
  let quiet = ref false in
  let list_rules = ref false in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest -> root := v; parse rest
    | "--baseline" :: v :: rest -> baseline_path := Some v; parse rest
    | "--update-baseline" :: rest -> update_baseline := true; parse rest
    | "--rules" :: v :: rest -> rules_spec := v; parse rest
    | "--json-out" :: v :: rest -> json_out := Some v; parse rest
    | "--gate" :: rest -> gate := true; parse rest
    | "--summary" :: rest -> summary_only := true; parse rest
    | "--quiet" :: rest -> quiet := true; parse rest
    | "--list" :: rest -> list_rules := true; parse rest
    | arg :: _ ->
      Printf.eprintf "ptrng-lint: unknown argument %s\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));

  if !list_rules then begin
    List.iter
      (fun (r : A.Rule.t) ->
        Printf.printf "%s  %-18s %-7s  %s\n" r.id r.name
          (A.Finding.severity_name r.severity)
          r.doc)
      A.Rules.all;
    exit 0
  end;

  let rules =
    match A.Rules.select !rules_spec with
    | Ok rules -> rules
    | Error e ->
      Printf.eprintf "ptrng-lint: %s\n" e;
      exit 1
  in

  let scan_dirs = [ "lib"; "bin"; "bench" ] in
  let loader =
    let l = A.Loader.load_dirs ~root:!root scan_dirs in
    if l.units <> [] then l
    else
      (* From the repo root the artifacts live under _build/default. *)
      let fallback = Filename.concat !root "_build/default" in
      A.Loader.load_dirs ~root:fallback scan_dirs
  in
  if loader.units = [] then begin
    Printf.eprintf
      "ptrng-lint: no .cmt/.cmti artifacts under %s — run `dune build @check` \
       first\n"
      !root;
    exit 1
  end;

  let baseline =
    match !baseline_path with
    | None -> A.Baseline.empty
    | Some path -> (
      match A.Baseline.load ~path with
      | Ok b -> b
      | Error e ->
        Printf.eprintf "ptrng-lint: cannot load baseline %s: %s\n" path e;
        exit 1)
  in

  let report, all = A.Engine.lint ~rules ~baseline loader in

  if !update_baseline then begin
    match !baseline_path with
    | None ->
      prerr_endline "ptrng-lint: --update-baseline needs --baseline FILE";
      exit 1
    | Some path -> (
      let next = A.Baseline.of_findings ~prev:baseline all in
      match A.Baseline.save ~path next with
      | Ok () ->
        Printf.printf "ptrng-lint: baseline %s now absorbs %d finding(s)\n"
          path (A.Baseline.count next);
        exit 0
      | Error e ->
        Printf.eprintf "ptrng-lint: cannot write baseline %s: %s\n" path e;
        exit 1)
  end;

  (match !json_out with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Ptrng_telemetry.Json.to_string_pretty (A.Report.to_json report));
        Out_channel.output_char oc '\n'));

  if !summary_only then print_endline (A.Report.summary_line report)
  else if not !quiet then Format.printf "%a" A.Report.pp report;

  if !gate && report.findings <> [] then exit 1
