(* Command-line reproduction driver for Haddad et al., DATE 2014:
   "On the assumption of mutual independence of jitter realizations in
   P-TRNG stochastic models".  One sub-command per experiment; see
   EXPERIMENTS.md for the mapping to the paper's figures. *)

let paper_f0 = Ptrng_osc.Pair.paper_f0
let paper_phase = Ptrng_osc.Pair.paper_relative

let make_rng seed = Ptrng_prng.Rng.create ~seed:(Int64.of_int seed) ()

let line = String.make 78 '-'

let print_header title =
  Printf.printf "%s\n%s\n%s\n" line title line

(* ---------------------------------------------------------------- *)
(* fig7                                                             *)
(* ---------------------------------------------------------------- *)

let write_fig7_csv path (analysis : Ptrng_model.Multilevel.analysis) =
  let oc = open_out path in
  Printf.fprintf oc "n,ideal_scaled,counter_scaled,model_scaled\n";
  let counter_at n =
    Array.fold_left
      (fun acc (p : Ptrng_measure.Variance_curve.point) ->
        if p.n = n then Some p.scaled else acc)
      None analysis.counter_curve
  in
  Array.iter
    (fun (p : Ptrng_measure.Variance_curve.point) ->
      let model = Ptrng_model.Spectral.scaled paper_phase ~f0:paper_f0 ~n:p.n in
      let counter =
        match counter_at p.n with Some v -> Printf.sprintf "%.8e" v | None -> ""
      in
      Printf.fprintf oc "%d,%.8e,%s,%.8e\n" p.n p.scaled counter model)
    analysis.ideal_curve;
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let run_fig7 seed log2_periods csv =
  let rng = make_rng seed in
  let n_periods = 1 lsl log2_periods in
  print_header
    (Printf.sprintf
       "Fig. 7 — f0^2 sigma_N^2 vs N  (simulated trace: 2^%d periods, seed %d)"
       log2_periods seed);
  let analysis =
    Ptrng_model.Multilevel.characterize ~n_periods ~rng (Ptrng_osc.Pair.paper_pair ())
  in
  Printf.printf "%8s  %14s  %14s  %14s  %8s\n" "N" "ideal" "counter" "paper model"
    "neff";
  let counter_at n =
    Array.fold_left
      (fun acc (p : Ptrng_measure.Variance_curve.point) ->
        if p.n = n then Some p.scaled else acc)
      None analysis.counter_curve
  in
  Array.iter
    (fun (p : Ptrng_measure.Variance_curve.point) ->
      let model = Ptrng_model.Spectral.scaled paper_phase ~f0:paper_f0 ~n:p.n in
      let counter =
        match counter_at p.n with Some v -> Printf.sprintf "%14.6e" v | None -> "             -"
      in
      Printf.printf "%8d  %14.6e  %s  %14.6e  %8d\n" p.n p.scaled counter model p.neff)
    analysis.ideal_curve;
  let fit = analysis.fit in
  Printf.printf "\nfit:  f0^2 sigma_N^2 = a N + b N^2\n";
  Printf.printf "  a = %.4e +- %.1e   (paper: 5.36e-6)\n" fit.a fit.a_se;
  Printf.printf "  b = %.4e +- %.1e   (paper: 5.36e-6/5354 = 1.001e-9)\n" fit.b fit.b_se;
  let slope, se = analysis.growth_exponent in
  Printf.printf "  log-log growth exponent: %.3f +- %.3f (1 = independent, 2 = flicker)\n"
    slope se;
  let e = analysis.extract in
  Printf.printf "\nextraction:\n";
  Printf.printf "  b_th  = %10.2f      (paper: 276.04)\n" e.phase.Ptrng_noise.Psd_model.b_th;
  Printf.printf "  b_fl  = %10.4e  (paper: %.4e)\n" e.phase.Ptrng_noise.Psd_model.b_fl
    paper_phase.Ptrng_noise.Psd_model.b_fl;
  Printf.printf "  sigma = %10.3f ps   (paper: 15.89 ps)\n" (e.sigma_thermal *. 1e12);
  Printf.printf "  sigma/T0 = %7.3f permil (paper: 1.6 permil)\n"
    (e.sigma_relative *. 1e3);
  Printf.printf "  k     = %10.0f      (paper: 5354, r_N = k/(k+N))\n" e.k_ratio;
  Printf.printf "  N(r_N > 95%%) = %d      (paper: 281)\n"
    (Ptrng_measure.Thermal_extract.independence_threshold e ~confidence:0.95);
  (match csv with None -> () | Some path -> write_fig7_csv path analysis);
  0

(* ---------------------------------------------------------------- *)
(* extract                                                          *)
(* ---------------------------------------------------------------- *)

let run_extract seed log2_periods =
  let rng = make_rng seed in
  let analysis =
    Ptrng_model.Multilevel.characterize ~n_periods:(1 lsl log2_periods) ~rng
      (Ptrng_osc.Pair.paper_pair ())
  in
  let e = analysis.extract in
  print_header "Sections III-E & IV-B — thermal-noise extraction";
  Printf.printf "%-34s %14s %14s\n" "quantity" "measured" "paper";
  Printf.printf "%-34s %14.2f %14.2f\n" "b_th [Hz]" e.phase.Ptrng_noise.Psd_model.b_th 276.04;
  Printf.printf "%-34s %14.4e %14.4e\n" "b_fl" e.phase.Ptrng_noise.Psd_model.b_fl
    paper_phase.Ptrng_noise.Psd_model.b_fl;
  Printf.printf "%-34s %14.3f %14.3f\n" "thermal period jitter sigma [ps]"
    (e.sigma_thermal *. 1e12) 15.89;
  Printf.printf "%-34s %14.3f %14.3f\n" "sigma / T0 [permil]" (e.sigma_relative *. 1e3) 1.6;
  Printf.printf "%-34s %14.0f %14.0f\n" "k (r_N = k/(k+N))" e.k_ratio 5354.0;
  Printf.printf "%-34s %14d %14d\n" "N threshold at r_N > 95%"
    (Ptrng_measure.Thermal_extract.independence_threshold e ~confidence:0.95)
    281;
  Printf.printf "\nr_N table (measured k):\n";
  List.iter
    (fun n ->
      Printf.printf "  r_%-6d = %.4f\n" n (Ptrng_measure.Thermal_extract.r_n e n))
    [ 10; 100; 281; 1000; 5354; 50000 ];
  0

(* ---------------------------------------------------------------- *)
(* entropy                                                          *)
(* ---------------------------------------------------------------- *)

let run_entropy sampling_periods =
  print_header
    (Printf.sprintf
       "Ablation A — entropy overestimation by the independence assumption (K = %d)"
       sampling_periods);
  let extract = Ptrng_measure.Thermal_extract.of_phase ~f0:paper_f0 paper_phase in
  let ns = [| 10; 50; 100; 281; 1000; 5354; 20000; 100000 |] in
  let rows = Ptrng_model.Compare.overestimation_table ~extract ~sampling_periods ~ns in
  Printf.printf "%8s  %16s  %14s  %14s  %14s\n" "N" "sigma_naive [ps]" "H_naive"
    "H_true" "overestimate";
  Array.iter
    (fun (r : Ptrng_model.Compare.row) ->
      Printf.printf "%8d  %16.3f  %14.6f  %14.6f  %14.6f\n" r.n
        (r.sigma_naive *. 1e12) r.entropy_naive r.entropy_true r.overestimate)
    rows;
  Printf.printf
    "\nsigma_naive = sqrt(sigma_N^2 / 2N): what a model assuming independent\n\
     jitter infers from a measurement over N periods.  H is Shannon entropy\n\
     per raw bit for a sampling interval of K oscillator periods.\n";
  0

(* ---------------------------------------------------------------- *)
(* scaling                                                          *)
(* ---------------------------------------------------------------- *)

let run_scaling () =
  print_header
    "Ablation B — technology scaling of the independence threshold (Sec. V)";
  Printf.printf "%-16s %10s %12s %12s %12s %10s\n" "node" "f0 [MHz]" "b_th" "b_fl"
    "corner [Hz]" "N(95%)";
  List.iter
    (fun node ->
      let ring = Ptrng_device.Technology.ring node in
      let phase = ring.Ptrng_device.Technology.phase in
      let threshold =
        Ptrng_device.Technology.independence_threshold_n phase
          ~f0:ring.Ptrng_device.Technology.f0 ~confidence:0.95
      in
      Printf.printf "%-16s %10.1f %12.4e %12.4e %12.4e %10d\n"
        node.Ptrng_device.Technology.name
        (ring.Ptrng_device.Technology.f0 /. 1e6)
        phase.Ptrng_noise.Psd_model.b_th phase.Ptrng_noise.Psd_model.b_fl
        (Ptrng_noise.Psd_model.corner_frequency phase)
        threshold)
    Ptrng_device.Technology.presets;
  Printf.printf
    "\nShrinking L raises the flicker coefficient as 1/L^2 (paper Sec. V):\n\
     the accumulation length below which jitter realizations may be treated\n\
     as independent collapses with every node.\n";
  0

(* ---------------------------------------------------------------- *)
(* online                                                           *)
(* ---------------------------------------------------------------- *)

let run_online seed attack strength =
  print_header "Ablation C — embedded thermal-noise test (paper conclusion)";
  let pair = Ptrng_osc.Pair.paper_pair () in
  let attacked =
    match attack with
    | "none" -> pair
    | "quench" -> Ptrng_trng.Attack.thermal_quench ~factor:(1.0 -. strength) pair
    | "inject" -> Ptrng_trng.Attack.frequency_injection ~lock_strength:strength pair
    | other -> failwith (Printf.sprintf "unknown attack %S" other)
  in
  let cfg =
    { Ptrng_measure.Online_test.ns = [| 4096; 16384; 65536; 262144 |];
      windows = 96; min_fraction = 0.4 }
  in
  let cycles = Ptrng_measure.Online_test.required_cycles cfg in
  Printf.printf "attack = %s (strength %.2f); simulating %d oscillator cycles...\n%!"
    attack strength cycles;
  let n = cycles + 8192 in
  (* Streamed trajectory: the online test wants global edge times, so
     the cumulative sums run across chunk boundaries while the two
     period buffers are reused — peak memory is two edge arrays
     instead of two edge arrays plus two full period arrays. *)
  let chunk = 262144 in
  let stream = Ptrng_osc.Pair.stream ~flicker_block:chunk (make_rng seed) attacked in
  let p1 = Float.Array.create chunk in
  let p2 = Float.Array.create chunk in
  let edges1 = Array.make (n + 1) 0.0 in
  let edges2 = Array.make (n + 1) 0.0 in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk (n - !pos) in
    Ptrng_osc.Pair.fill stream ~p1 ~p2 ~len;
    for i = 0 to len - 1 do
      edges1.(!pos + i + 1) <- edges1.(!pos + i) +. Float.Array.get p1 i;
      edges2.(!pos + i + 1) <- edges2.(!pos + i) +. Float.Array.get p2 i
    done;
    pos := !pos + len
  done;
  let v =
    Ptrng_measure.Online_test.run cfg ~f0:paper_f0 ~reference_b_th:276.04 ~edges1
      ~edges2
  in
  Printf.printf "estimated b_th      : %10.2f   (reference 276.04)\n" v.b_th_est;
  Printf.printf "estimated sigma     : %10.3f ps (reference 15.89)\n"
    (v.sigma_est *. 1e12);
  Printf.printf "quantization floor  : %10.3f counts^2\n" v.floor_est;
  Printf.printf "total var at max N  : %10.3f counts^2 (naive health metric)\n"
    v.total_var_max_n;
  Printf.printf "verdict             : %s\n" (if v.pass then "PASS" else "ALARM");
  0

(* ---------------------------------------------------------------- *)
(* trng                                                             *)
(* ---------------------------------------------------------------- *)

let run_trng seed bits divisor xor_factor ais31 nist sp90b =
  print_header "eRO-TRNG bit generation (paper Fig. 4)";
  let cfg =
    Ptrng_trng.Ero_trng.config ~divisor ~xor_factor (Ptrng_osc.Pair.paper_pair ())
  in
  Printf.printf "divisor %d, xor factor %d, target %d raw bits; simulating...\n%!"
    divisor xor_factor bits;
  let stream = Ptrng_trng.Ero_trng.generate (make_rng seed) cfg ~bits in
  Printf.printf "produced %d bits  bias = %+.4f  serial correlation = %+.4f\n"
    (Ptrng_trng.Bitstream.length stream)
    (Ptrng_trng.Bitstream.bias stream)
    (Ptrng_trng.Bitstream.serial_correlation stream);
  if ais31 then begin
    if Ptrng_trng.Bitstream.length stream >= Ptrng_ais31.Procedure_a.block_bits then begin
      Printf.printf "\nAIS31 procedure A:\n";
      let summary = Ptrng_ais31.Procedure_a.run stream in
      Format.printf "%a@." Ptrng_ais31.Report.pp summary
    end
    else
      Printf.printf "\n(not enough bits for AIS31 procedure A: need %d)\n"
        Ptrng_ais31.Procedure_a.block_bits;
    if Ptrng_trng.Bitstream.length stream >= 2000 then begin
      Printf.printf "\nAIS31 procedure B (subset for available bits):\n";
      let summary = Ptrng_ais31.Procedure_b.run stream in
      Format.printf "%a@." Ptrng_ais31.Report.pp summary
    end
  end;
  if nist then begin
    Printf.printf "\nNIST SP 800-22 battery:\n";
    let results = Ptrng_nist22.Sp80022.run_all (Ptrng_trng.Bitstream.to_bools stream) in
    Format.printf "%a@." Ptrng_nist22.Sp80022.pp_results results
  end;
  if sp90b then begin
    Printf.printf "\nSP 800-90B min-entropy estimators:\n";
    let estimates, aggregate =
      Ptrng_sp90b.Estimators.run_all (Ptrng_trng.Bitstream.to_bools stream)
    in
    List.iter
      (fun (e : Ptrng_sp90b.Estimators.estimate) ->
        Printf.printf "  %-20s p_max %.4f  min-entropy %.4f\n" e.name e.p_max
          e.min_entropy)
      estimates;
    Printf.printf "  aggregate min-entropy: %.4f bit/bit\n" aggregate
  end;
  0

(* ---------------------------------------------------------------- *)
(* assess                                                           *)
(* ---------------------------------------------------------------- *)

let run_assess seed bits divisor =
  print_header "Full TRNG assessment (AIS31 + SP 800-22 + SP 800-90B + health)";
  let cfg = Ptrng_trng.Ero_trng.config ~divisor (Ptrng_osc.Pair.paper_pair ()) in
  Printf.printf "simulating %d bits at divisor %d...\n%!" bits divisor;
  let stream = Ptrng_trng.Ero_trng.generate (make_rng seed) cfg ~bits in
  let t = Ptrng_report.Assessment.evaluate stream in
  Format.printf "%a@." Ptrng_report.Assessment.pp t;
  match t.verdict with `Fail -> 1 | `Pass | `Caution -> 0

(* ---------------------------------------------------------------- *)
(* allan                                                            *)
(* ---------------------------------------------------------------- *)

let run_allan seed log2_periods =
  print_header "Allan deviation of the relative frequency (time-domain view)";
  let model = Ptrng_noise.Psd_model.frac_freq_of_phase ~f0:paper_f0 paper_phase in
  Printf.printf "white FM level h0   = %.4e, flicker level h-1 = %.4e\n"
    model.Ptrng_noise.Psd_model.h0 model.Ptrng_noise.Psd_model.hm1;
  Printf.printf "predicted crossover = %.1f us (k/f0 = 5354 periods)\n\n"
    (Ptrng_stats.Allan.crossover_tau ~h0:model.Ptrng_noise.Psd_model.h0
       ~hm1:model.Ptrng_noise.Psd_model.hm1
    *. 1e6);
  let n = 1 lsl log2_periods in
  let pair = Ptrng_osc.Pair.paper_pair () in
  let p1, p2 = Ptrng_osc.Pair.simulate (make_rng seed) pair ~n in
  let t0 = 1.0 /. paper_f0 in
  let y =
    Ptrng_signal.Filter.remove_mean
      (Array.init n (fun k -> (p1.(k) -. p2.(k)) /. t0))
  in
  Printf.printf "%10s  %12s  %26s  %12s\n" "tau [us]" "adev" "68% CI" "model adev";
  Array.iter
    (fun (pt : Ptrng_stats.Allan.point) ->
      let lo, hi = Ptrng_stats.Allan.confidence_interval pt in
      let model_avar =
        Ptrng_stats.Allan.avar_white_fm ~h0:model.Ptrng_noise.Psd_model.h0 ~tau:pt.tau
        +. Ptrng_stats.Allan.avar_flicker_fm ~hm1:model.Ptrng_noise.Psd_model.hm1
      in
      Printf.printf "%10.2f  %12.4e  [%11.4e,%11.4e]  %12.4e\n" (pt.tau *. 1e6)
        (sqrt pt.avar) (sqrt lo) (sqrt hi) (sqrt model_avar))
    (Ptrng_stats.Allan.sweep ~tau0:t0 ~ms:(Ptrng_stats.Allan.octave_ms ~n) y);
  0

(* ---------------------------------------------------------------- *)
(* design                                                           *)
(* ---------------------------------------------------------------- *)

let run_design target =
  print_header
    (Printf.sprintf "Sampler design for %.3f bit/bit (thermal-only crediting)" target);
  let extract = Ptrng_measure.Thermal_extract.of_phase ~f0:paper_f0 paper_phase in
  let k = Ptrng_model.Design.required_divisor ~target ~extract () in
  Printf.printf "thermal sigma          : %.2f ps (%.2f permil of T0)\n"
    (extract.sigma_thermal *. 1e12)
    (extract.sigma_relative *. 1e3);
  Printf.printf "required divisor K     : %d periods/sample\n" k;
  Printf.printf "delivered entropy      : %.5f bit/bit\n"
    (Ptrng_model.Design.entropy_at ~extract ~divisor:k);
  Printf.printf "raw throughput         : %.1f kbit/s at %.0f MHz\n"
    (Ptrng_model.Design.throughput ~extract ~divisor:k /. 1e3)
    (paper_f0 /. 1e6);
  Printf.printf "\nWhat the independence assumption would have done:\n";
  List.iter
    (fun measured_at ->
      let naive =
        Ptrng_model.Design.naive_divisor ~target ~extract ~measured_at ()
      in
      Printf.printf
        "  jitter measured over N=%6d -> K = %6d, true entropy %.4f bit/bit\n"
        measured_at naive
        (Ptrng_model.Design.entropy_at ~extract ~divisor:naive))
    [ 1000; 10000; 100000 ];
  0

(* ---------------------------------------------------------------- *)
(* monitor                                                          *)
(* ---------------------------------------------------------------- *)

(* "5s", "500ms", "2m" or a bare float (seconds). *)
let parse_duration s =
  let s = String.trim s in
  let len = String.length s in
  let num, mult =
    if len > 2 && String.sub s (len - 2) 2 = "ms" then
      (String.sub s 0 (len - 2), 1e-3)
    else if len > 1 && s.[len - 1] = 's' then (String.sub s 0 (len - 1), 1.0)
    else if len > 1 && s.[len - 1] = 'm' then (String.sub s 0 (len - 1), 60.0)
    else (s, 1.0)
  in
  match float_of_string_opt (String.trim num) with
  | Some v when v > 0.0 -> Ok (v *. mult)
  | _ -> Error (Printf.sprintf "bad duration %S (try 5s, 500ms, 2m)" s)

let run_monitor seed duration periods attack strength divisor listen refresh
    dashboard =
  let module M = Ptrng_monitor in
  (* The observatory instruments itself through the telemetry layer;
     the gauges and counter tracks must be live for /metrics to serve
     anything, so this sub-command enables telemetry unconditionally. *)
  Ptrng_telemetry.Registry.enable ();
  let pair = Ptrng_osc.Pair.paper_pair () in
  let attacked =
    match attack with
    | "none" -> pair
    | "quench" -> Ptrng_trng.Attack.thermal_quench ~factor:(1.0 -. strength) pair
    | "inject" -> Ptrng_trng.Attack.frequency_injection ~lock_strength:strength pair
    | other -> failwith (Printf.sprintf "unknown attack %S" other)
  in
  let mon = M.Monitor.create (M.Monitor.default_config ~f0:paper_f0) in
  (* One continuous streamed trajectory: the flicker phase and the
     sampler's detuning beat carry across chunk boundaries (the old
     batch loop restarted the simulation each chunk and needed long
     chunks to balance the beat), and the jitter path reuses two fill
     buffers instead of allocating five arrays per chunk. *)
  let chunk = 262144 in
  (* The flight recorder rides along on every monitor run: the
     provenance records exactly how to rebuild this stream, so a frozen
     incident can be replayed offline with `repro postmortem`. *)
  let recorder =
    M.Flight_recorder.create
      ~provenance:
        {
          M.Flight_recorder.kind = "monitor";
          workload =
            (if attack = "none" then "none"
             else Printf.sprintf "%s:%g" attack strength);
          seed;
          divisor;
          chunk;
          flicker_block = chunk;
        }
      ()
  in
  M.Monitor.attach_recorder mon recorder;
  let server =
    match listen with
    | None -> None
    | Some port ->
      let s = M.Monitor.serve ~port mon in
      Printf.printf "monitor: serving %s/metrics, %s/health and %s/incidents\n%!"
        (M.Http.url s) (M.Http.url s) (M.Http.url s);
      Some s
  in
  let rng = make_rng seed in
  let now () = Ptrng_telemetry.Clock.now () in
  let deadline = now () +. duration in
  let processed = ref 0 in
  let next_refresh = ref 0.0 in
  let continue () =
    match periods with
    | Some p -> !processed < p
    | None -> now () < deadline
  in
  if not dashboard then
    Printf.printf "monitor: attack %s (strength %.2f), divisor %d, %s...\n%!"
      attack strength divisor
      (match periods with
      | Some p -> Printf.sprintf "%d periods" p
      | None -> Printf.sprintf "%.1fs" duration);
  let stream = Ptrng_osc.Pair.stream ~flicker_block:chunk rng attacked in
  let p1 = Float.Array.create chunk in
  let p2 = Float.Array.create chunk in
  let jbuf = Float.Array.create chunk in
  let edges_of_chunk buf =
    (* Chunk-local edge times (t0 = 0): the sampler only compares edge
       times within the chunk, so the global offset is irrelevant. *)
    let e = Array.make (chunk + 1) 0.0 in
    for k = 0 to chunk - 1 do
      e.(k + 1) <- e.(k) +. Float.Array.get buf k
    done;
    e
  in
  while continue () do
    Ptrng_osc.Pair.fill stream ~p1 ~p2 ~len:chunk;
    for i = 0 to chunk - 1 do
      Float.Array.set jbuf i (Float.Array.get p1 i -. Float.Array.get p2 i)
    done;
    M.Monitor.feed_jitter_chunk mon jbuf ~len:chunk;
    let osc1_edges = edges_of_chunk p1 in
    let osc2_edges = edges_of_chunk p2 in
    M.Monitor.feed_bits mon
      (Ptrng_trng.Sampler.sample ~osc1_edges ~osc2_edges ~divisor);
    processed := !processed + chunk;
    if dashboard && now () >= !next_refresh then begin
      next_refresh := now () +. refresh;
      print_string
        (M.Dashboard.clear_screen ^ M.Dashboard.render (M.Monitor.snapshot mon));
      flush stdout
    end
  done;
  let s = M.Monitor.snapshot mon in
  if dashboard then print_string M.Dashboard.clear_screen;
  print_header "Live entropy-health observatory — final state";
  print_string (M.Dashboard.render ~color:dashboard s);
  Printf.printf "\nincidents captured: %d\n"
    (M.Flight_recorder.incident_count recorder);
  Printf.printf "verdict: %s\n" (M.Verdict.status_string s.verdict.status);
  Option.iter M.Http.stop server;
  match s.verdict.status with
  | M.Verdict.Ok -> 0
  | M.Verdict.Degraded -> 1
  | M.Verdict.Failing -> 2

(* ---------------------------------------------------------------- *)
(* scenario                                                         *)
(* ---------------------------------------------------------------- *)

let run_scenario names all list_only seed json_out incidents_out
    expect_within expect_recover expect_lie_r expect_clean expect_incidents =
  let module S = Ptrng_scenario in
  let module Sc = Ptrng_device.Scenario in
  if list_only then begin
    print_header "Scenario matrix";
    List.iter
      (fun (e : S.Registry.entry) ->
        Printf.printf "%-16s %s\n%-16s expected: %s\n"
          (Sc.name e.scenario) (Sc.description e.scenario) "" e.expected)
      (S.Registry.all ());
    0
  end
  else begin
    let entries =
      if all || names = [] then S.Registry.all ()
      else
        List.map
          (fun n ->
            match S.Registry.find n with
            | Some e -> e
            | None ->
              failwith (Printf.sprintf "unknown scenario %S (try --list)" n))
          names
    in
    print_header "Adversarial & environmental scenario engine";
    let results =
      List.map
        (fun (e : S.Registry.entry) ->
          Printf.printf "%-16s %s\n%!" (Sc.name e.scenario)
            (Sc.description e.scenario);
          let r = S.Runner.run ~seed e in
          let d = r.S.Runner.detection in
          (match d.detected with
          | None -> Printf.printf "  detected : no\n"
          | Some a ->
            Printf.printf
              "  detected : %s at period %d (latency %d periods, %d bits, %d \
               windows)\n"
              a.detector a.at_period a.latency_periods a.latency_bits
              a.latency_windows);
          (match d.recovered with
          | None -> ()
          | Some x ->
            Printf.printf "  recovered: verdict ok at period %d (window %d)\n"
              x.at_period x.at_window);
          Printf.printf "  pre-onset false alarms: %d\n" d.false_alarms;
          if d.lie_margin_r > 0.0 || d.lie_margin_entropy > 0.0 then
            Printf.printf
              "  silent lie: static claims r=%.3f h=%.3f; live fell to \
               r=%.3f h=%.3f (margin %.3f / %.3f)\n"
              d.static_r d.static_entropy d.live_r d.live_entropy
              d.lie_margin_r d.lie_margin_entropy;
          Printf.printf "  final    : %s (r=%.3f, k=%.0f, %d bits, %d \
                         recoveries)\n"
            (Ptrng_monitor.Verdict.status_string r.final_status)
            r.final_r r.final_k r.bits r.recoveries;
          if r.incidents <> [] then
            Printf.printf "  incidents: %d frozen bundle%s\n"
              (List.length r.incidents)
              (if List.length r.incidents = 1 then "" else "s");
          r)
        entries
    in
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Ptrng_telemetry.Json.to_string_pretty (S.Runner.report_json ~seed results));
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %s\n" path);
    (match incidents_out with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      List.iter
        (fun (r : S.Runner.result) ->
          List.iteri
            (fun i bundle ->
              let path =
                Filename.concat dir (Printf.sprintf "%s-%d.json" r.name i)
              in
              let oc = open_out path in
              output_string oc (Ptrng_telemetry.Json.to_string_pretty bundle);
              output_char oc '\n';
              close_out oc;
              Printf.printf "wrote %s\n" path)
            r.incidents)
        results);
    (* Expectation gates: applied to every selected scenario, so they
       are meant for single-scenario invocations (the smoke gate). *)
    let failures = ref 0 in
    let fail fmt =
      incr failures;
      Printf.printf fmt
    in
    List.iter
      (fun (r : S.Runner.result) ->
        let d = r.detection in
        (match expect_within with
        | None -> ()
        | Some budget -> (
          match d.detected with
          | Some a when a.latency_periods <= budget -> ()
          | Some a ->
            fail "FAIL %s: detection latency %d periods exceeds budget %d\n"
              r.name a.latency_periods budget
          | None ->
            fail "FAIL %s: no detection within the run (budget %d periods)\n"
              r.name budget));
        if expect_recover && d.recovered = None then
          fail "FAIL %s: verdict never recovered to ok\n" r.name;
        (match expect_lie_r with
        | None -> ()
        | Some m ->
          if not (d.lie_margin_r >= m) then
            fail "FAIL %s: r_N lie margin %.4f below the required %.4f\n"
              r.name d.lie_margin_r m);
        (match expect_incidents with
        | None -> ()
        | Some n ->
          let got = List.length r.incidents in
          if got <> n then
            fail "FAIL %s: %d incidents frozen, expected %d\n" r.name got n);
        if expect_clean then begin
          (match d.detected with
          | None -> ()
          | Some a -> fail "FAIL %s: unexpected %s alarm\n" r.name a.detector);
          if d.false_alarms > 0 then
            fail "FAIL %s: %d false alarms on a clean run\n" r.name
              d.false_alarms;
          if r.final_status <> Ptrng_monitor.Verdict.Ok then
            fail "FAIL %s: final verdict %s on a clean run\n" r.name
              (Ptrng_monitor.Verdict.status_string r.final_status)
        end)
      results;
    if !failures > 0 then 1
    else begin
      Printf.printf "\nall expectations met\n";
      0
    end
  end

(* ---------------------------------------------------------------- *)
(* postmortem                                                       *)
(* ---------------------------------------------------------------- *)

let run_postmortem file json_out no_color =
  let module S = Ptrng_scenario in
  match S.Postmortem.load file with
  | Error e ->
    Printf.eprintf "repro postmortem: %s\n" e;
    1
  | Ok bundle ->
    print_header (Printf.sprintf "Post-mortem replay — %s" file);
    print_string (S.Postmortem.timeline ~color:(not no_color) bundle);
    let v : S.Postmortem.verdict = S.Postmortem.verify bundle in
    Printf.printf "\nsegment check (skip + refill) : %s\n"
      (if v.segment_match then "match" else "MISMATCH");
    Printf.printf "full replay (bundle bytes)    : %s\n"
      (if v.bundle_match then "match" else "MISMATCH");
    List.iter (fun e -> Printf.printf "  %s\n" e) v.errors;
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Ptrng_telemetry.Json.to_string_pretty (S.Postmortem.report_json ~file v));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path);
    if v.segment_match && v.bundle_match then begin
      Printf.printf
        "replay contract holds: incident %d (%s/%s) reproduces bit-identically\n"
        v.id v.kind v.workload;
      0
    end
    else 1

(* ---------------------------------------------------------------- *)
(* selftest                                                         *)
(* ---------------------------------------------------------------- *)

let run_selftest () =
  print_header "Model self-check — eq. 11 closed form vs numeric eq. 9 integral";
  Printf.printf "%8s  %14s  %14s  %10s\n" "N" "closed" "numeric" "rel.err";
  let worst = ref 0.0 in
  List.iter
    (fun n ->
      let closed = Ptrng_model.Spectral.sigma2_n paper_phase ~f0:paper_f0 ~n in
      let numeric = Ptrng_model.Spectral.sigma2_n_numeric paper_phase ~f0:paper_f0 ~n in
      let err = Float.abs ((numeric -. closed) /. closed) in
      if err > !worst then worst := err;
      Printf.printf "%8d  %14.6e  %14.6e  %10.2e\n" n closed numeric err)
    [ 1; 3; 10; 31; 100; 281; 1000; 5354; 31623; 100000 ];
  Printf.printf "\nworst relative error: %.2e -> %s\n" !worst
    (if !worst < 1e-3 then "OK" else "FAIL");
  if !worst < 1e-3 then 0 else 1

(* ---------------------------------------------------------------- *)
(* cmdliner wiring                                                  *)
(* ---------------------------------------------------------------- *)

open Cmdliner

(* ---------------------------------------------------------------- *)
(* telemetry options, shared by every sub-command                   *)
(* ---------------------------------------------------------------- *)

type telemetry_opts = {
  metrics_out : string option;
  trace : bool;
  events : string option;
  prometheus_out : string option;
  perfetto_out : string option;
}

let telemetry_opts =
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write the metrics/span snapshot (JSON) to \
             $(docv) on exit.  See docs/OBSERVABILITY.md.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Enable telemetry and print the span trace tree on exit.")
  in
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and stream structured events (JSONL, one object \
             per line) to $(docv) while running.")
  in
  let prometheus_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prometheus-out" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write the Prometheus text exposition to \
             $(docv) on exit.")
  in
  let perfetto_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto-out" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry, run the GC/domain runtime profiler, and write a \
             Chrome/Perfetto trace_event JSON to $(docv) on exit (open it at \
             ui.perfetto.dev).  See docs/PROFILING.md.")
  in
  Term.(
    const (fun metrics_out trace events prometheus_out perfetto_out ->
        { metrics_out; trace; events; prometheus_out; perfetto_out })
    $ metrics_out $ trace $ events $ prometheus_out $ perfetto_out)

let with_telemetry opts k =
  let module Tm = Ptrng_telemetry in
  let active =
    opts.metrics_out <> None || opts.trace || opts.events <> None
    || opts.prometheus_out <> None || opts.perfetto_out <> None
  in
  if not active then k ()
  else begin
    Tm.Registry.enable ();
    (match opts.events with
    | Some path -> (
      try Tm.Event_log.open_ path
      with Sys_error e ->
        Printf.eprintf "repro: cannot open event log: %s\n" e;
        exit 1)
    | None -> ());
    (* The runtime profiler only runs for perfetto exports: its GC and
       pool counter series are what fill the trace's counter tracks. *)
    if opts.perfetto_out <> None then Tm.Runtime_profile.start ();
    let write what writer path =
      try
        writer path;
        Printf.printf "wrote %s %s\n" what path
      with Sys_error e ->
        Printf.eprintf "repro: cannot write %s: %s\n" what e;
        exit 1
    in
    let finish () =
      Tm.Runtime_profile.stop ();
      (match opts.metrics_out with
      | Some path -> write "metrics snapshot" Tm.Sink.write_snapshot path
      | None -> ());
      (match opts.prometheus_out with
      | Some path -> write "prometheus exposition" Tm.Sink.write_prometheus path
      | None -> ());
      (match opts.perfetto_out with
      | Some path -> write "perfetto trace" Tm.Trace_export.write path
      | None -> ());
      if opts.trace then begin
        print_newline ();
        print_endline "trace:";
        Format.printf "%a@." Tm.Span.pp (Tm.Span.roots ())
      end;
      Tm.Event_log.close ()
    in
    Fun.protect ~finally:finish k
  end

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel sections (default: \
           $(b,PTRNG_DOMAINS), else the machine's recommended count).  \
           Results are bit-identical for every value; see \
           docs/PARALLELISM.md.")

(* Wrap a sub-command body (as a thunk term) with the telemetry and
   parallelism options so every experiment can emit machine-readable
   output.  The body runs inside a [repro.<name>] root span. *)
let instrument name thunk =
  let spanned opts domains k =
    Ptrng_exec.Pool.set_default domains;
    with_telemetry opts (fun () ->
        Ptrng_telemetry.Span.with_ ~name:("repro." ^ name) k)
  in
  Term.(const spanned $ telemetry_opts $ domains_arg $ thunk)

let seed_arg =
  Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let log2_periods_arg =
  Arg.(
    value
    & opt int 20
    & info [ "log2-periods" ] ~docv:"P"
        ~doc:"Simulate 2^$(docv) oscillator periods (default 20; 22 for a slow, \
              high-precision run).")

let fig7_cmd =
  let doc = "Reproduce Fig. 7: the sigma_N^2 variance curve, fit and extraction." in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the curve as CSV to $(docv).")
  in
  Cmd.v (Cmd.info "fig7" ~doc)
    (instrument "fig7"
       Term.(
         const (fun seed p csv () -> run_fig7 seed p csv)
         $ seed_arg $ log2_periods_arg $ csv_arg))

let extract_cmd =
  let doc = "Reproduce Sections III-E/IV-B: thermal jitter, r_N and the threshold." in
  Cmd.v (Cmd.info "extract" ~doc)
    (instrument "extract"
       Term.(const (fun seed p () -> run_extract seed p) $ seed_arg $ log2_periods_arg))

let entropy_cmd =
  let doc = "Entropy overestimation of the independence-assuming model." in
  let k_arg =
    Arg.(
      value & opt int 300
      & info [ "sampling-periods" ] ~docv:"K"
          ~doc:"Oscillator periods accumulated between samples.")
  in
  Cmd.v (Cmd.info "entropy" ~doc)
    (instrument "entropy" Term.(const (fun k () -> run_entropy k) $ k_arg))

let scaling_cmd =
  let doc = "Technology-node scaling of the independence threshold." in
  Cmd.v (Cmd.info "scaling" ~doc)
    (instrument "scaling" Term.(const (fun () () -> run_scaling ()) $ const ()))

let online_cmd =
  let doc = "Embedded thermal-noise health test under attack." in
  let attack_arg =
    Arg.(
      value & opt string "quench"
      & info [ "attack" ] ~docv:"KIND" ~doc:"none, quench or inject.")
  in
  let strength_arg =
    Arg.(
      value & opt float 0.95
      & info [ "strength" ] ~docv:"S" ~doc:"Attack strength in [0,1).")
  in
  Cmd.v (Cmd.info "online" ~doc)
    (instrument "online"
       Term.(
         const (fun seed attack strength () -> run_online seed attack strength)
         $ seed_arg $ attack_arg $ strength_arg))

let trng_cmd =
  let doc = "Generate bits with the simulated eRO-TRNG and test them." in
  let bits_arg =
    Arg.(value & opt int 20000 & info [ "bits" ] ~docv:"N" ~doc:"Raw bits to produce.")
  in
  let divisor_arg =
    Arg.(
      value & opt int 1000
      & info [ "divisor" ] ~docv:"K" ~doc:"Osc2 cycles between samples.")
  in
  let xor_arg =
    Arg.(value & opt int 1 & info [ "xor" ] ~docv:"K" ~doc:"Parity-filter factor.")
  in
  let ais31_arg =
    Arg.(value & flag & info [ "ais31" ] ~doc:"Run the AIS31 procedures on the output.")
  in
  let nist_arg =
    Arg.(value & flag & info [ "nist" ] ~doc:"Run the SP 800-22 battery on the output.")
  in
  let sp90b_arg =
    Arg.(
      value & flag
      & info [ "sp90b" ] ~doc:"Run the SP 800-90B min-entropy estimators on the output.")
  in
  Cmd.v (Cmd.info "trng" ~doc)
    (instrument "trng"
       Term.(
         const (fun seed bits divisor xor ais31 nist sp90b () ->
             run_trng seed bits divisor xor ais31 nist sp90b)
         $ seed_arg $ bits_arg $ divisor_arg $ xor_arg $ ais31_arg $ nist_arg
         $ sp90b_arg))

let assess_cmd =
  let doc = "Generate bits with the simulated eRO-TRNG and run every battery." in
  let bits_arg =
    Arg.(value & opt int 30000 & info [ "bits" ] ~docv:"N" ~doc:"Bits to assess.")
  in
  let divisor_arg =
    Arg.(
      value & opt int 1000
      & info [ "divisor" ] ~docv:"K" ~doc:"Osc2 cycles between samples.")
  in
  Cmd.v (Cmd.info "assess" ~doc)
    (instrument "assess"
       Term.(
         const (fun seed bits divisor () -> run_assess seed bits divisor)
         $ seed_arg $ bits_arg $ divisor_arg))

let allan_cmd =
  let doc = "Allan deviation of the simulated relative frequency, with the crossover." in
  Cmd.v (Cmd.info "allan" ~doc)
    (instrument "allan"
       Term.(const (fun seed p () -> run_allan seed p) $ seed_arg $ log2_periods_arg))

let design_cmd =
  let doc = "Size the sampler divisor for a target entropy per bit." in
  let target_arg =
    Arg.(
      value & opt float 0.997
      & info [ "target" ] ~docv:"H" ~doc:"Entropy target in (0,1), default AIS31 PTG.2.")
  in
  Cmd.v (Cmd.info "design" ~doc)
    (instrument "design" Term.(const (fun target () -> run_design target) $ target_arg))

let monitor_cmd =
  let doc =
    "Run the simulator as a live source through the streaming health \
     observatory: sliding-window r_N, SP 800-90B / AIS31 health tests, EWMA \
     and CUSUM control charts, /metrics and /health endpoints.  Exits 0 when \
     the final verdict is ok, 1 degraded, 2 failing."
  in
  let duration_arg =
    let duration_conv =
      ( (fun s ->
          match parse_duration s with Ok d -> `Ok d | Error e -> `Error e),
        fun fmt d -> Format.fprintf fmt "%gs" d )
    in
    Arg.(
      value & opt duration_conv 5.0
      & info [ "duration" ] ~docv:"DUR"
          ~doc:"Wall-clock run length: 5s, 500ms, 2m or bare seconds.")
  in
  let periods_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "periods" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) simulated oscillator periods instead of \
             $(b,--duration) — deterministic for a fixed seed, so this is \
             what the smoke gate uses.")
  in
  let attack_arg =
    Arg.(
      value & opt string "none"
      & info [ "attack" ] ~docv:"KIND" ~doc:"none, quench or inject.")
  in
  let strength_arg =
    Arg.(
      value & opt float 0.95
      & info [ "strength" ] ~docv:"S" ~doc:"Attack strength in [0,1).")
  in
  let divisor_arg =
    Arg.(
      value & opt int 1000
      & info [ "divisor" ] ~docv:"K" ~doc:"Osc2 cycles between bit samples.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "Serve GET /metrics (Prometheus) and /health (JSON) on \
             127.0.0.1:$(docv) while running (0 = ephemeral, printed at \
             start).")
  in
  let refresh_arg =
    Arg.(
      value & opt float 0.5
      & info [ "refresh" ] ~docv:"S" ~doc:"Dashboard refresh period, seconds.")
  in
  let no_dashboard_arg =
    Arg.(
      value & flag
      & info [ "no-dashboard" ]
          ~doc:"Plain incremental output instead of the refreshing dashboard \
                (for logs and CI).")
  in
  Cmd.v (Cmd.info "monitor" ~doc)
    (instrument "monitor"
       Term.(
         const (fun seed duration periods attack strength divisor listen refresh
                    no_dash () ->
             run_monitor seed duration periods attack strength divisor listen
               refresh (not no_dash))
         $ seed_arg $ duration_arg $ periods_arg $ attack_arg $ strength_arg
         $ divisor_arg $ listen_arg $ refresh_arg $ no_dashboard_arg))

let scenario_cmd =
  let doc =
    "Run named adversarial/environmental scenarios (time-varying noise and \
     frequency schedules plus fault injections) through the full pipeline and \
     score detection latency, false alarms, silent-lie margins and fail-safe \
     recovery.  Exits non-zero when an $(b,--expect-*) gate fails."
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME" ~doc:"Scenario names to run (see $(b,--list)).")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Run the whole scenario matrix.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the matrix and exit.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:
            "Write the deterministic ptrng-scenario/1 JSON report to $(docv) \
             (no wall-clock fields — byte-identical for a fixed seed under \
             any $(b,PTRNG_DOMAINS)).")
  in
  let expect_within_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "expect-detect-within" ] ~docv:"P"
          ~doc:"Fail unless every selected run detects its fault within \
                $(docv) periods of onset.")
  in
  let expect_recover_arg =
    Arg.(
      value & flag
      & info [ "expect-recover" ]
          ~doc:"Fail unless every selected run's verdict de-escalates back to \
                ok after the detection.")
  in
  let expect_lie_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "expect-lie-r-min" ] ~docv:"X"
          ~doc:"Fail unless the r_N silent-lie margin (stale static claim \
                minus live fit) reaches $(docv).")
  in
  let expect_clean_arg =
    Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:"Fail on any detection, false alarm or non-ok final verdict.")
  in
  let incidents_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "incidents-out" ] ~docv:"DIR"
          ~doc:
            "Write every frozen ptrng-incident/1 bundle to \
             $(docv)/<scenario>-<id>.json (replay them with $(b,repro \
             postmortem)).")
  in
  let expect_incidents_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "expect-incidents" ] ~docv:"N"
          ~doc:
            "Fail unless every selected run freezes exactly $(docv) flight-\
             recorder incidents.")
  in
  Cmd.v (Cmd.info "scenario" ~doc)
    (instrument "scenario"
       Term.(
         const (fun names all list seed json inc w rec_ lie clean exp_inc () ->
             run_scenario names all list seed json inc w rec_ lie clean exp_inc)
         $ names_arg $ all_arg $ list_arg $ seed_arg $ json_arg $ incidents_arg
         $ expect_within_arg $ expect_recover_arg $ expect_lie_arg
         $ expect_clean_arg $ expect_incidents_arg))

let postmortem_cmd =
  let doc =
    "Load a frozen ptrng-incident/1 flight-recorder bundle, render the \
     annotated incident timeline, and verify the deterministic replay \
     contract: fast-forward the recorded stream with Pair.skip and compare \
     the captured raw segment bit for bit, then re-run the whole pipeline \
     from the recorded seed and check the re-frozen bundle is byte-identical \
     (at any $(b,PTRNG_DOMAINS)).  Exits 1 on any mismatch."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"INCIDENT"
          ~doc:
            "Incident bundle (JSON) to replay, as written by $(b,repro \
             scenario --incidents-out) or fetched from GET /incidents/<n>.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:
            "Write the ptrng-postmortem/1 verification report (JSON) to \
             $(docv).")
  in
  let no_color_arg =
    Arg.(
      value & flag
      & info [ "no-color" ] ~doc:"Disable ANSI colors in the timeline.")
  in
  Cmd.v (Cmd.info "postmortem" ~doc)
    (instrument "postmortem"
       Term.(
         const (fun file json nc () -> run_postmortem file json nc)
         $ file_arg $ json_arg $ no_color_arg))

let selftest_cmd =
  let doc = "Check eq. 11 against numeric integration of eq. 9." in
  Cmd.v (Cmd.info "selftest" ~doc)
    (instrument "selftest" Term.(const (fun () () -> run_selftest ()) $ const ()))

let main_cmd =
  let doc =
    "Reproduction of 'On the assumption of mutual independence of jitter \
     realizations in P-TRNG stochastic models' (DATE 2014)."
  in
  Cmd.group (Cmd.info "repro" ~version:"1.0.0" ~doc)
    [ fig7_cmd; extract_cmd; entropy_cmd; scaling_cmd; online_cmd; monitor_cmd;
      scenario_cmd; postmortem_cmd; trng_cmd; assess_cmd; allan_cmd; design_cmd;
      selftest_cmd ]

let () = exit (Cmd.eval' main_cmd)
