(* Beyond the paper's model: what if the oscillator also *ages*?

     dune exec examples/aging_detection.exe

   Random-walk FM (supply/temperature drift, device aging) adds a
   third, cubic regime to the variance curve:

     f0^2 sigma_N^2 = a N  +  b N^2  +  d N^3
                      thermal  flicker   random walk

   The same measurement that separates thermal from flicker separates
   aging too — fit the cubic term and recover h_{-2}.  An aging term
   mistaken for flicker corrupts both coefficients, so checking d
   before trusting a two-term fit is cheap insurance. *)

let f0 = Ptrng_osc.Pair.paper_f0
let paper = Ptrng_osc.Pair.paper_relative

let measure ~rw_hm2 ~seed =
  (* Single oscillator carrying the full relative coefficients plus the
     planted aging level, streamed through the variance-curve
     accumulator: memory stays O(chunk + 2 max N) however long the
     acquisition runs. *)
  let cfg = Ptrng_osc.Oscillator.config ~rw_hm2 ~f0 ~phase:paper () in
  let n = 1 lsl 20 in
  let src =
    Ptrng_osc.Oscillator.source ~flicker_block:n
      (Ptrng_prng.Rng.create ~seed ()) cfg
  in
  let ns = Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:32768 in
  let acc = Ptrng_measure.Variance_curve.Jitter_acc.create ~f0 ns in
  let chunk = 8192 in
  let buf = Float.Array.create chunk in
  let t0 = 1.0 /. f0 in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk (n - !pos) in
    Ptrng_osc.Oscillator.fill_periods src ~len buf;
    (* Period -> jitter in place: J_k = T_k - 1/f0 (paper eq. 3). *)
    for i = 0 to len - 1 do
      Float.Array.set buf i (Float.Array.get buf i -. t0)
    done;
    Ptrng_measure.Variance_curve.Jitter_acc.feed acc buf ~len;
    pos := !pos + len
  done;
  Ptrng_measure.Variance_curve.Jitter_acc.points acc

let () =
  let planted = 5e-7 in
  Printf.printf "planted aging level h-2 = %.2e\n\n" planted;
  let curve = measure ~rw_hm2:planted ~seed:31L in

  (* Two-term (paper) fit vs three-term fit on the same data. *)
  let two = Ptrng_measure.Fit.fit ~f0 curve in
  let three = Ptrng_measure.Fit.fit ~with_cubic:true ~f0 curve in
  let p2 = Ptrng_measure.Fit.phase_of two in
  let p3 = Ptrng_measure.Fit.phase_of three in
  Printf.printf "%-26s %14s %14s %14s\n" "fit" "b_th" "b_fl" "h-2";
  Printf.printf "%-26s %14.1f %14.3e %14s\n" "paper model (aN + bN^2)"
    p2.Ptrng_noise.Psd_model.b_th p2.Ptrng_noise.Psd_model.b_fl "-";
  Printf.printf "%-26s %14.1f %14.3e %14.3e\n" "with cubic term"
    p3.Ptrng_noise.Psd_model.b_th p3.Ptrng_noise.Psd_model.b_fl
    (Ptrng_measure.Fit.rw_hm2_of three);
  Printf.printf "%-26s %14.1f %14.3e %14.2e\n" "ground truth" 276.0
    paper.Ptrng_noise.Psd_model.b_fl planted;

  let slope, se =
    Ptrng_model.Bienayme.growth_exponent curve
  in
  Printf.printf
    "\ngrowth exponent %.2f +- %.2f (thermal 1, flicker 2, aging 3):\n\
     the two-term fit blames the cubic excess on flicker, inflating b_fl\n\
     by %.1fx; the cubic fit recovers all three noise processes.\n"
    slope se
    (p2.Ptrng_noise.Psd_model.b_fl /. paper.Ptrng_noise.Psd_model.b_fl)
