(* Quickstart: build the paper's elementary RO-TRNG, generate random
   bits, and judge their quality.

     dune exec examples/quickstart.exe

   Walks the whole public API surface in ~30 lines through the
   [Ptrng] umbrella namespace (one [(libraries ptrng)] dependency):
   oscillator pair -> TRNG -> bitstream -> statistical tests ->
   entropy model. *)

let () =
  (* 1. The entropy source: two 103 MHz rings whose *relative* jitter
     carries the paper's measured coefficients b_th and b_fl. *)
  let pair = Ptrng.Osc.Pair.paper_pair () in

  (* 2. The generator: sample Osc1 with a D flip-flop every 2000 cycles
     of Osc2 (a long accumulation so thermal jitter dominates the
     sampled phase). *)
  let trng = Ptrng.Trng.Ero_trng.config ~divisor:2000 pair in

  (* 3. Generate a few thousand raw bits (event-level simulation of
     every oscillator period). *)
  let rng = Ptrng.Prng.Rng.create ~seed:42L () in
  let bits = Ptrng.Trng.Ero_trng.generate rng trng ~bits:8000 in
  Printf.printf "generated %d raw bits\n" (Ptrng.Trng.Bitstream.length bits);
  Printf.printf "bias               : %+.4f\n" (Ptrng.Trng.Bitstream.bias bits);
  Printf.printf "serial correlation : %+.4f\n"
    (Ptrng.Trng.Bitstream.serial_correlation bits);

  (* 4. A quick distribution check (AIS31 procedure B's T6). *)
  let t6 =
    Ptrng.Ais31.Procedure_b.t6_uniform ~k:1 ~a:0.025
      (Ptrng.Trng.Bitstream.to_bools bits)
  in
  Printf.printf "AIS31 T6 uniformity: %s (departure %.4f)\n"
    (if t6.Ptrng.Ais31.Report.pass then "pass" else "FAIL")
    t6.Ptrng.Ais31.Report.statistic;

  (* 5. What entropy per bit should we expect?  Only the thermal part
     of the jitter may be credited (the paper's central warning). *)
  let extract =
    Ptrng.Measure.Thermal_extract.of_phase ~f0:Ptrng.Osc.Pair.paper_f0
      Ptrng.Osc.Pair.paper_relative
  in
  let phase_std =
    Ptrng.Model.Entropy.phase_std_thermal ~sigma_period:extract.sigma_thermal
      ~k:2000 ~f0:extract.f0
  in
  Printf.printf "thermal phase diffusion over 2000 periods: %.2f rad\n" phase_std;
  Printf.printf "model entropy per raw bit (thermal only) : %.4f\n"
    (Ptrng.Model.Entropy.avg_entropy ~phase_std);

  (* 6. Drawing raw noise directly: the streaming [Source] API is one
     create/fill contract over every backend (white, Kasdin, Voss,
     spectral).  The caller owns the buffer; refilling it never
     allocates, and the stream is a pure function of its seed. *)
  let src = Ptrng.Source.create (Ptrng.Source.flicker_fm ~hm1:1e-6 ()) rng in
  let buf = Float.Array.create 4096 in
  Ptrng.Source.fill src buf;
  let rms = ref 0.0 in
  Float.Array.iter (fun x -> rms := !rms +. (x *. x)) buf;
  Printf.printf "streamed 4096 flicker samples, rms %.3e\n"
    (sqrt (!rms /. 4096.0))
