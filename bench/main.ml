(* Benchmark & reproduction harness.

     dune exec bench/main.exe              (default sizes, ~2 min)
     dune exec bench/main.exe -- --quick   (CI-sized)
     dune exec bench/main.exe -- --full    (high-precision Fig. 7)
     dune exec bench/main.exe -- --smoke   (seconds; for dune runtest)
     dune exec bench/main.exe -- --no-perf (skip Bechamel timings)
     dune exec bench/main.exe -- --out F   (write the JSON report to F)
     dune exec bench/main.exe -- --perfetto-out F  (Perfetto trace)
     dune exec bench/main.exe -- --sha REV (stamp the history record)
     dune exec bench/main.exe -- --history F       (history JSONL path)
     dune exec bench/main.exe -- --history-table   (print trend, no run)
     dune exec bench/main.exe -- --lint-summary S  (stamp history with S)

   One section per experiment of EXPERIMENTS.md (the paper's Fig. 7 and
   the numeric results of Sections III-E/IV-B, plus the three
   ablations), followed by Bechamel micro-benchmarks of the
   computational kernels.

   Every run also writes a machine-readable report (BENCH_1.json by
   default): per-section wall time and allocation from the telemetry
   span tree, key numeric results (fitted a/b, sigma_th, growth
   exponents), per-section throughput, kernel timings and the full
   metrics snapshot — and appends one ptrng-bench-history/1 record to
   the history file (bench/history.jsonl by default).
   docs/OBSERVABILITY.md describes the report format, docs/PROFILING.md
   the trace and history tooling; the @bench-smoke alias checks none of
   it rots. *)

module Tm = Ptrng_telemetry
module History = Bench_history.History

let smoke = Array.exists (( = ) "--smoke") Sys.argv
let quick = Array.exists (( = ) "--quick") Sys.argv
let full = Array.exists (( = ) "--full") Sys.argv
let no_perf = Array.exists (( = ) "--no-perf") Sys.argv || smoke
let history_table = Array.exists (( = ) "--history-table") Sys.argv

let flag_value name default =
  let v = ref default in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length Sys.argv then v := Sys.argv.(i + 1))
    Sys.argv;
  !v

let out_path = flag_value "--out" "BENCH_1.json"
let history_path = flag_value "--history" "bench/history.jsonl"
let sha = flag_value "--sha" "unknown"

(* --lint-summary "ptrng-lint: ..." stamps the history record with the
   lint state of the tree that was benched (CI passes the @lint
   summary line through).  When the flag is absent, the lint section
   below fills it from its own in-process analyzer run, so every
   history record carries the finding counts alongside the analyzer
   wall time. *)
let lint_summary =
  Atomic.make (match flag_value "--lint-summary" "" with "" -> None | s -> Some s)

let perfetto_out =
  match flag_value "--perfetto-out" "" with "" -> None | path -> Some path

(* --domains N overrides PTRNG_DOMAINS / the recommended count for
   every parallel section (results are bit-identical either way). *)
let () =
  Array.iteri
    (fun i a ->
      if a = "--domains" && i + 1 < Array.length Sys.argv then
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some d -> Ptrng_exec.Pool.set_default (Some d)
        | None ->
          Printf.eprintf "bench: --domains expects an integer\n";
          exit 2)
    Sys.argv

let pool_domains = Ptrng_exec.Pool.available ()

let mode =
  if smoke then "smoke" else if quick then "quick" else if full then "full" else "default"

let paper_f0 = Ptrng_osc.Pair.paper_f0
let paper_phase = Ptrng_osc.Pair.paper_relative

let log2_periods =
  if smoke then 14 else if quick then 18 else if full then 22 else 20

let banner title =
  let line = String.make 78 '=' in
  Printf.printf "\n%s\n== %s\n%s\n%!" line title line

(* Section results, newest first: (section, key-value list). *)
let section_results : (string * (string * Tm.Json.t) list) list Atomic.t =
  Atomic.make []

let run_section name f =
  Tm.Span.with_ ~name (fun () ->
      let kv = f () in
      let rec push () =
        let old = Atomic.get section_results in
        if not (Atomic.compare_and_set section_results old ((name, kv) :: old))
        then push ()
      in
      push ())

(* ------------------------------------------------------------------ *)
(* FIG7 + RN + THERMAL: the central experiment                        *)
(* ------------------------------------------------------------------ *)

let section_fig7 () =
  banner
    (Printf.sprintf "FIG7 — f0^2 sigma_N^2 vs N (2^%d simulated periods)" log2_periods);
  let rng = Ptrng_prng.Rng.create ~seed:2014L () in
  let analysis =
    Ptrng_model.Multilevel.characterize ~n_periods:(1 lsl log2_periods) ~rng
      (Ptrng_osc.Pair.paper_pair ())
  in
  let counter_at n =
    Array.fold_left
      (fun acc (p : Ptrng_measure.Variance_curve.point) ->
        if p.n = n then Some p.scaled else acc)
      None analysis.counter_curve
  in
  Printf.printf "%8s  %13s  %13s  %13s  %7s\n" "N" "ideal" "counter" "paper-fit" "ratio";
  Array.iter
    (fun (p : Ptrng_measure.Variance_curve.point) ->
      let fn = float_of_int p.n in
      (* The fit the paper reports: 5.36e-6 N (1 + N/5354). *)
      let paper_fit = 5.36e-6 *. fn *. (1.0 +. (fn /. 5354.0)) in
      let counter =
        match counter_at p.n with
        | Some v -> Printf.sprintf "%13.4e" v
        | None -> "            -"
      in
      Printf.printf "%8d  %13.4e  %s  %13.4e  %7.3f\n" p.n p.scaled counter paper_fit
        (p.scaled /. paper_fit))
    analysis.ideal_curve;
  let slope, se = analysis.growth_exponent in
  Printf.printf "growth exponent %.3f +- %.3f (independence = 1, flicker = 2)\n" slope se;
  analysis

let fig7_kv (analysis : Ptrng_model.Multilevel.analysis) =
  let fit = analysis.fit in
  let slope, slope_se = analysis.growth_exponent in
  [
    ("periods", Tm.Json.Int analysis.n_periods);
    ("fit_a", Tm.Json.num fit.a);
    ("fit_a_se", Tm.Json.num fit.a_se);
    ("fit_b", Tm.Json.num fit.b);
    ("fit_b_se", Tm.Json.num fit.b_se);
    ("growth_exponent", Tm.Json.num slope);
    ("growth_exponent_se", Tm.Json.num slope_se);
  ]

let section_extraction (analysis : Ptrng_model.Multilevel.analysis) =
  banner "RN & THERMAL — Sections III-E and IV-B";
  let e = analysis.extract in
  let fit = analysis.fit in
  Printf.printf "%-36s %14s %14s\n" "quantity" "measured" "paper";
  Printf.printf "%-36s %14.4e %14.4e\n" "fit a (f0^2 sigma^2_Nth / N)" fit.a 5.36e-6;
  Printf.printf "%-36s %14.2f %14.2f\n" "b_th" e.phase.Ptrng_noise.Psd_model.b_th 276.04;
  Printf.printf "%-36s %14.4e %14.4e\n" "b_fl" e.phase.Ptrng_noise.Psd_model.b_fl
    paper_phase.Ptrng_noise.Psd_model.b_fl;
  Printf.printf "%-36s %14.3f %14.3f\n" "thermal sigma [ps]" (e.sigma_thermal *. 1e12)
    15.89;
  Printf.printf "%-36s %14.3f %14.3f\n" "sigma/T0 [permil]" (e.sigma_relative *. 1e3) 1.6;
  Printf.printf "%-36s %14.0f %14.0f\n" "k (r_N = k/(k+N))" e.k_ratio 5354.0;
  Printf.printf "%-36s %14d %14d\n" "N at r_N > 95%"
    (Ptrng_measure.Thermal_extract.independence_threshold e ~confidence:0.95)
    281;
  (match analysis.counter_fit with
  | None ->
    Printf.printf
      "(counter-only extraction: too few saturated points at this trace length;\n\
      \ run with --full)\n"
  | Some cf ->
    let phase = Ptrng_measure.Fit.phase_of cf in
    let bth_se, bfl_se = Ptrng_measure.Fit.phase_se_of cf in
    Printf.printf
      "counter-only extraction (saturated region, floor-aware fit):\n\
      \  b_fl = %.3e +- %.1e (flicker recoverable by real hardware)\n\
      \  b_th = %.0f +- %.0f (unresolved below the quantization floor:\n\
      \  see ONLINE for the averaging budget)\n"
      phase.Ptrng_noise.Psd_model.b_fl bfl_se phase.Ptrng_noise.Psd_model.b_th bth_se);
  [
    ("b_th", Tm.Json.num e.phase.Ptrng_noise.Psd_model.b_th);
    ("b_fl", Tm.Json.num e.phase.Ptrng_noise.Psd_model.b_fl);
    ("sigma_th_ps", Tm.Json.num (e.sigma_thermal *. 1e12));
    ("sigma_relative_permil", Tm.Json.num (e.sigma_relative *. 1e3));
    ("k_ratio", Tm.Json.num e.k_ratio);
    ( "n_threshold_95",
      Tm.Json.Int (Ptrng_measure.Thermal_extract.independence_threshold e ~confidence:0.95)
    );
  ]

let section_model () =
  banner "MODEL — eq. 11 closed form vs numeric eq. 9 integral";
  Printf.printf "%8s  %13s  %13s  %9s\n" "N" "closed" "numeric" "rel.err";
  let worst = ref 0.0 in
  List.iter
    (fun n ->
      let c = Ptrng_model.Spectral.sigma2_n paper_phase ~f0:paper_f0 ~n in
      let v = Ptrng_model.Spectral.sigma2_n_numeric paper_phase ~f0:paper_f0 ~n in
      let err = Float.abs ((v -. c) /. c) in
      if err > !worst then worst := err;
      Printf.printf "%8d  %13.6e  %13.6e  %9.2e\n" n c v err)
    [ 1; 10; 281; 5354; 100000 ];
  [ ("worst_rel_err", Tm.Json.num !worst) ]

let section_entropy () =
  banner "ENTROPY — Ablation A: overestimation by the independence assumption";
  let extract = Ptrng_measure.Thermal_extract.of_phase ~f0:paper_f0 paper_phase in
  let ns = [| 100; 281; 5354; 100000 |] in
  let max_over = ref 0.0 in
  List.iter
    (fun k ->
      let rows =
        Ptrng_model.Compare.overestimation_table ~extract ~sampling_periods:k ~ns
      in
      Printf.printf "K = %d periods/sample:\n" k;
      Array.iter
        (fun (r : Ptrng_model.Compare.row) ->
          if r.overestimate > !max_over then max_over := r.overestimate;
          Printf.printf
            "  N=%6d  sigma_naive=%7.2f ps  H_naive=%8.5f  H_true=%8.5f  (+%.5f)\n"
            r.n (r.sigma_naive *. 1e12) r.entropy_naive r.entropy_true r.overestimate)
        rows)
    [ 300; 1000 ];
  [ ("max_overestimate_bits", Tm.Json.num !max_over) ]

let section_scaling () =
  banner "SCALING — Ablation B: independence threshold across CMOS nodes";
  Printf.printf "%-16s %9s %12s %12s %8s\n" "node" "f0[MHz]" "b_th" "b_fl" "N(95%)";
  let kv = ref [] in
  List.iter
    (fun node ->
      let ring = Ptrng_device.Technology.ring node in
      let p = ring.Ptrng_device.Technology.phase in
      let threshold =
        Ptrng_device.Technology.independence_threshold_n p
          ~f0:ring.Ptrng_device.Technology.f0 ~confidence:0.95
      in
      kv :=
        ( "n95_" ^ String.map (fun c -> if c = ' ' then '_' else c)
                     node.Ptrng_device.Technology.name,
          Tm.Json.Int threshold )
        :: !kv;
      Printf.printf "%-16s %9.1f %12.4e %12.4e %8d\n" node.Ptrng_device.Technology.name
        (ring.Ptrng_device.Technology.f0 /. 1e6)
        p.Ptrng_noise.Psd_model.b_th p.Ptrng_noise.Psd_model.b_fl threshold)
    Ptrng_device.Technology.presets;
  List.rev !kv

let section_online () =
  banner "ONLINE — Ablation C: embedded thermal-noise test";
  let ns = [| 4096; 16384; 65536; 262144 |] in
  List.iter
    (fun precision ->
      let w =
        Ptrng_measure.Online_test.windows_for_precision ~phase:paper_phase ~floor:0.33
          ~ns ~f0:paper_f0 ~rel_precision:precision
      in
      let cycles = Array.fold_left (fun acc n -> acc + (n * w)) 0 ns in
      Printf.printf "precision %3.0f%%: %7d windows/point = %6.2f s at 103 MHz\n"
        (precision *. 100.0) w
        (float_of_int cycles /. paper_f0))
    [ 0.5; 0.25; 0.1 ];
  let strong =
    Ptrng_osc.Pair.of_relative ~f0:paper_f0
      ~relative:
        { paper_phase with Ptrng_noise.Psd_model.b_th = paper_phase.b_th *. 100.0 }
      ()
  in
  let reference = paper_phase.Ptrng_noise.Psd_model.b_th *. 100.0 in
  let cfg =
    if smoke then
      { Ptrng_measure.Online_test.ns = [| 256; 1024; 4096; 16384 |];
        windows = 16; min_fraction = 0.4 }
    else
      { Ptrng_measure.Online_test.ns = [| 512; 2048; 8192; 32768 |];
        windows = (if quick then 32 else 64);
        min_fraction = 0.4 }
  in
  let kv = ref [] in
  let evaluate key label seed pair =
    let n = Ptrng_measure.Online_test.required_cycles cfg + 8192 in
    let p1, p2 = Ptrng_osc.Pair.simulate (Ptrng_prng.Rng.create ~seed ()) pair ~n in
    let edges1 = Ptrng_osc.Oscillator.edges_of_periods p1 in
    let edges2 = Ptrng_osc.Oscillator.edges_of_periods p2 in
    let v =
      Ptrng_measure.Online_test.run cfg ~f0:paper_f0 ~reference_b_th:reference ~edges1
        ~edges2
    in
    kv := (key ^ "_pass", Tm.Json.Bool v.pass) :: (key ^ "_b_th", Tm.Json.num v.b_th_est)
          :: !kv;
    Printf.printf "%-34s b_th=%9.0f  %s\n" label v.b_th_est
      (if v.pass then "PASS" else "ALARM")
  in
  evaluate "healthy" "100x-thermal, healthy" 100L strong;
  evaluate "injection" "100x-thermal, 95% injection lock" 101L
    (Ptrng_trng.Attack.frequency_injection ~lock_strength:0.95 strong);
  evaluate "quench" "100x-thermal, x0.05 quench" 102L
    (Ptrng_trng.Attack.thermal_quench ~factor:0.05 strong);
  List.rev !kv

let section_allan () =
  banner "ALLAN — time-domain view: Allan deviation of the relative frequency";
  (* The paper's N-domain crossover k = 5354 periods is, in the Allan
     domain, a crossover time tau_c = k / f0 ~ 52 us where the white-FM
     slope -1/2 meets the flicker floor 2 ln2 h-1. *)
  let model = Ptrng_noise.Psd_model.frac_freq_of_phase ~f0:paper_f0 paper_phase in
  let tau_c =
    Ptrng_stats.Allan.crossover_tau ~h0:model.Ptrng_noise.Psd_model.h0
      ~hm1:model.Ptrng_noise.Psd_model.hm1
  in
  Printf.printf "predicted crossover tau_c = %.1f us (= k/f0 = 5354 periods)\n\n"
    (tau_c *. 1e6);
  let pair = Ptrng_osc.Pair.paper_pair () in
  let n = 1 lsl (if smoke then 14 else if quick then 18 else 20) in
  let p1, p2 = Ptrng_osc.Pair.simulate (Ptrng_prng.Rng.create ~seed:55L ()) pair ~n in
  let t0 = 1.0 /. paper_f0 in
  (* Relative fractional frequency per period. *)
  let y = Array.init n (fun k -> (p1.(k) -. p2.(k)) /. t0) in
  let y = Ptrng_signal.Filter.remove_mean y in
  let ms =
    if smoke then [| 16; 64; 256; 1024 |]
    else [| 16; 64; 256; 1024; 4096; 16384; 65536 |]
  in
  Printf.printf "%10s  %13s  %13s  %13s\n" "tau [us]" "adev meas" "adev model" "ratio";
  Array.iter
    (fun (pt : Ptrng_stats.Allan.point) ->
      let model_avar =
        Ptrng_stats.Allan.avar_white_fm ~h0:model.Ptrng_noise.Psd_model.h0 ~tau:pt.tau
        +. Ptrng_stats.Allan.avar_flicker_fm ~hm1:model.Ptrng_noise.Psd_model.hm1
      in
      Printf.printf "%10.2f  %13.4e  %13.4e  %13.3f\n" (pt.tau *. 1e6)
        (sqrt pt.avar) (sqrt model_avar)
        (sqrt (pt.avar /. model_avar)))
    (Ptrng_stats.Allan.sweep ~tau0:t0 ~ms y);
  [ ("periods", Tm.Json.Int n); ("crossover_tau_us", Tm.Json.num (tau_c *. 1e6)) ]

let section_restart () =
  banner "RESTART — Ablation D: oscillator restarts restore Bienayme linearity";
  let cfg = Ptrng_osc.Oscillator.config ~f0:paper_f0 ~phase:paper_phase () in
  let restarts = if smoke then 200 else if quick then 800 else 2000 in
  let n = 4096 in
  let runs =
    Ptrng_osc.Restart.ensemble (Ptrng_prng.Rng.create ~seed:77L ()) cfg ~restarts ~n
  in
  let sigma_th2 = paper_phase.Ptrng_noise.Psd_model.b_th /. (paper_f0 ** 3.0) in
  Printf.printf "%8s  %13s  %13s  %13s\n" "N" "restart var" "thermal N*s2"
    "free-running";
  let curve = Ptrng_osc.Restart.variance_curve runs ~ns:[| 16; 64; 256; 1024; 4096 |] in
  Array.iter
    (fun (n, v) ->
      Printf.printf "%8d  %13.4e  %13.4e  %13.4e\n" n v
        (float_of_int n *. sigma_th2)
        (Ptrng_model.Spectral.sigma2_n paper_phase ~f0:paper_f0 ~n /. 2.0))
    curve;
  let exponent = Ptrng_osc.Restart.growth_exponent curve in
  Printf.printf "restart growth exponent: %.3f (1 = independence restored)\n" exponent;
  [
    ("periods", Tm.Json.Int (restarts * n));
    ("growth_exponent", Tm.Json.num exponent);
  ]

(* ------------------------------------------------------------------ *)
(* Parallel sections: wall time at 1 domain vs the pool, same seeds    *)
(* ------------------------------------------------------------------ *)

let timed f =
  let t = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t)

(* Run [work d] at 1 domain and at [pool_domains] (same seed inside
   [work], so the outputs must be bit-identical) and report the usual
   speedup key-values.  [equal] checks the bit-identity claim. *)
let dual_run ~equal work =
  let r1, wall_1 = timed (fun () -> work 1) in
  let rp, wall_par = timed (fun () -> work pool_domains) in
  let deterministic = equal r1 rp in
  let speedup = wall_1 /. Float.max 1e-9 wall_par in
  Printf.printf
    "1 domain: %.3f s   %d domains: %.3f s   speedup %.2fx   bit-identical: %s\n"
    wall_1 pool_domains wall_par speedup
    (if deterministic then "yes" else "NO");
  ( rp,
    [
      ("domains", Tm.Json.Int pool_domains);
      ("wall_1_s", Tm.Json.num wall_1);
      ("wall_par_s", Tm.Json.num wall_par);
      ("speedup", Tm.Json.num speedup);
      ("deterministic", Tm.Json.Bool deterministic);
    ] )

let section_noise_synth () =
  banner
    (Printf.sprintf "NOISE-SYNTH — bulk 1/f block synthesis (%d domains vs 1)"
       pool_domains);
  let n = 1 lsl (if smoke then 13 else if quick then 16 else 17) in
  let count = if smoke then 8 else 32 in
  let hm1 = 1e-3 in
  let psd f = hm1 /. f in
  let blocks, kv =
    dual_run ~equal:( = ) (fun d ->
        let rng = Ptrng_prng.Rng.create ~seed:404L () in
        Ptrng_noise.Spectral_synth.generate_many ~domains:d rng ~psd ~fs:paper_f0
          ~count n)
  in
  (* Sanity: the synthesized blocks carry the requested flicker level. *)
  let mean_var =
    Array.fold_left
      (fun acc b -> acc +. Ptrng_stats.Descriptive.variance b)
      0.0 blocks
    /. float_of_int count
  in
  Printf.printf "%d blocks x %d samples, mean block variance %.3e\n" count n mean_var;
  (("samples", Tm.Json.Int (count * n)) :: kv)
  @ [ ("mean_block_variance", Tm.Json.num mean_var) ]

let section_variance_curve () =
  banner
    (Printf.sprintf "VARIANCE-CURVE — dense sigma_N^2 grid (%d domains vs 1)"
       pool_domains);
  let len = 1 lsl (if smoke then 15 else if quick then 19 else 20) in
  (* A calibrated thermal-only jitter trace, synthesized once through
     the pool (the generation itself is domain-independent). *)
  let sigma = sqrt (paper_phase.Ptrng_noise.Psd_model.b_th /. (paper_f0 ** 3.0)) in
  let rng = Ptrng_prng.Rng.create ~seed:505L () in
  let jitter =
    Ptrng_exec.Pool.parallel_init_floats ~rng
      ~fill:(fun child ~offset ~len out ->
        let g = Ptrng_prng.Gaussian.create child in
        for k = offset to offset + len - 1 do
          out.(k) <- sigma *. Ptrng_prng.Gaussian.draw g
        done)
      len
  in
  let ns =
    Ptrng_measure.Variance_curve.log_grid ~n_min:4 ~n_max:(len / 16)
      ~per_decade:(if smoke then 6 else 10)
  in
  let curve, kv =
    dual_run
      ~equal:(fun (a : Ptrng_measure.Variance_curve.point array) b -> a = b)
      (fun d ->
        Ptrng_measure.Variance_curve.of_jitter ~domains:d ~f0:paper_f0 ~ns jitter)
  in
  let fit = Ptrng_measure.Fit.fit ~f0:paper_f0 curve in
  Printf.printf
    "%d grid points over %d samples; fitted a = %.4e (thermal-only truth %.4e)\n"
    (Array.length curve) len fit.a
    (paper_phase.Ptrng_noise.Psd_model.b_th *. 2.0 /. paper_f0);
  (("periods", Tm.Json.Int len) :: ("grid_points", Tm.Json.Int (Array.length curve))
   :: kv)
  @ [ ("fit_a", Tm.Json.num fit.a); ("fit_b", Tm.Json.num fit.b) ]

(* ------------------------------------------------------------------ *)
(* MONITOR: streaming observatory feed cost                            *)
(* ------------------------------------------------------------------ *)

let section_monitor () =
  banner "MONITOR — streaming health-observatory feed cost";
  let module M = Ptrng_monitor in
  let jitter_n = if smoke then 1 lsl 16 else if quick then 1 lsl 19 else 1 lsl 21 in
  let bits_n = if smoke then 1 lsl 13 else 1 lsl 16 in
  let mon = M.Monitor.create (M.Monitor.default_config ~f0:paper_f0) in
  let rng = Ptrng_prng.Rng.create ~seed:2014L () in
  (* Uniform streams: the feed cost is data-independent, and a fair
     coin keeps every health test quiet, so the section doubles as a
     no-false-alarm check. *)
  let jit =
    Array.init jitter_n (fun _ -> (Ptrng_prng.Rng.float rng -. 0.5) *. 1e-11)
  in
  let bits = Array.init bits_n (fun _ -> Ptrng_prng.Rng.bool rng) in
  let timed_alloc f =
    let w0 = Gc.minor_words () in
    let t0 = Tm.Clock.now () in
    f ();
    (Tm.Clock.now () -. t0, Gc.minor_words () -. w0)
  in
  let jt, jw = timed_alloc (fun () -> M.Monitor.feed_jitter_array mon jit) in
  (* The streaming entry point on a second monitor: same samples pushed
     through a reused floatarray chunk — the words/sample column is the
     zero-allocation check for the live-feed hot path. *)
  let mon2 = M.Monitor.create (M.Monitor.default_config ~f0:paper_f0) in
  let chunk = 8192 in
  let buf = Float.Array.create chunk in
  let ct, cw =
    timed_alloc (fun () ->
        let pos = ref 0 in
        while !pos < jitter_n do
          let len = min chunk (jitter_n - !pos) in
          for i = 0 to len - 1 do
            Float.Array.unsafe_set buf i (Array.unsafe_get jit (!pos + i))
          done;
          M.Monitor.feed_jitter_chunk mon2 buf ~len;
          pos := !pos + len
        done)
  in
  let bt, bw = timed_alloc (fun () -> M.Monitor.feed_bits mon bits) in
  let s = M.Monitor.snapshot mon in
  let per value n = value /. float_of_int n in
  Printf.printf "feed_jitter  %8.1f ns/sample  %6.2f words/sample  (%d samples)\n"
    (per jt jitter_n *. 1e9) (per jw jitter_n) jitter_n;
  Printf.printf "feed_chunk   %8.1f ns/sample  %6.2f words/sample  (%d samples)\n"
    (per ct jitter_n *. 1e9) (per cw jitter_n) jitter_n;
  Printf.printf "feed_bit     %8.1f ns/bit     %6.2f words/bit     (%d bits)\n"
    (per bt bits_n *. 1e9) (per bw bits_n) bits_n;
  Printf.printf "verdict %s after %d windows (r_%d = %.4f, min-entropy %.3f)\n"
    (M.Verdict.status_string s.verdict.M.Verdict.status)
    s.windows s.judge_n s.r_judge s.min_entropy;
  [
    ("jitter_samples", Tm.Json.Int jitter_n);
    ("ns_per_jitter_sample", Tm.Json.num (per jt jitter_n *. 1e9));
    ("words_per_jitter_sample", Tm.Json.num (per jw jitter_n));
    ("ns_per_chunk_sample", Tm.Json.num (per ct jitter_n *. 1e9));
    ("words_per_chunk_sample", Tm.Json.num (per cw jitter_n));
    ("bits", Tm.Json.Int bits_n);
    ("ns_per_bit", Tm.Json.num (per bt bits_n *. 1e9));
    ("words_per_bit", Tm.Json.num (per bw bits_n));
    ("verdict", Tm.Json.String (M.Verdict.status_string s.verdict.M.Verdict.status));
  ]

(* ------------------------------------------------------------------ *)
(* SCENARIO: adversarial schedules, detection latency, recovery        *)
(* ------------------------------------------------------------------ *)

let section_scenario () =
  banner "SCENARIO — adversarial schedules: detection latency and recovery";
  let module S = Ptrng_scenario in
  let module Scen = Ptrng_device.Scenario in
  let module D = Ptrng_monitor.Detection in
  let entries =
    if smoke then
      (* Quarter-length transients with the same physics as the stock
         thermal-quench and lock-burst entries.  The post-fault tail is
         too short for the de-escalation streak, so smoke scores
         detection only. *)
      let onset = 384_000 and duration = 256_000 in
      let short scenario expected =
        {
          S.Registry.scenario;
          periods = 1_048_576;
          divisor = S.Registry.default_divisor;
          expected;
        }
      in
      [
        short
          (Scen.make ~name:"quench"
             ~description:"transient thermal quench to 2% of calibration"
             ~faults:[ Scen.Thermal_quench { onset; duration; factor = 0.02 } ]
             ())
          "independence ratio detects the quench";
        short
          (Scen.make ~name:"lock"
             ~description:"transient 95% inter-ring coupling"
             ~faults:[ Scen.Coupling { onset; duration; strength = 0.95 } ]
             ())
          "RCT catches the frozen output";
      ]
    else List.filter_map S.Registry.find [ "thermal-quench"; "lock-burst" ]
  in
  let results = List.map (fun e -> S.Runner.run ~seed:2014 e) entries in
  Printf.printf "%-16s %-14s %8s %8s %6s %10s\n" "scenario" "detector"
    "lat[win]" "false" "recov" "final";
  List.iter
    (fun (r : S.Runner.result) ->
      let d = r.detection in
      let detector, latency =
        match d.D.detected with
        | Some a -> (a.D.detector, string_of_int a.D.latency_windows)
        | None -> ("-", "-")
      in
      Printf.printf "%-16s %-14s %8s %8d %6s %10s\n" r.name detector latency
        d.D.false_alarms
        (if d.D.recovered <> None then "yes" else "no")
        (Ptrng_monitor.Verdict.status_string r.final_status))
    results;
  let total_periods =
    List.fold_left (fun acc (r : S.Runner.result) -> acc + r.periods) 0 results
  in
  let count p = List.length (List.filter p results) in
  let detected = count (fun r -> r.S.Runner.detection.D.detected <> None) in
  let recovered = count (fun r -> r.S.Runner.detection.D.recovered <> None) in
  let false_alarms =
    List.fold_left
      (fun acc (r : S.Runner.result) -> acc + r.detection.D.false_alarms)
      0 results
  in
  let max_latency =
    List.fold_left
      (fun acc (r : S.Runner.result) ->
        match r.detection.D.detected with
        | Some a -> max acc a.D.latency_windows
        | None -> acc)
      0 results
  in
  [
    ("periods", Tm.Json.Int total_periods);
    ("scenarios", Tm.Json.Int (List.length results));
    ("detected", Tm.Json.Int detected);
    ("recovered", Tm.Json.Int recovered);
    ("false_alarms", Tm.Json.Int false_alarms);
    ("max_latency_windows", Tm.Json.Int max_latency);
  ]

(* ------------------------------------------------------------------ *)
(* POSTMORTEM: flight-recorder capture overhead                        *)
(* ------------------------------------------------------------------ *)

(* The recorder promises zero allocation per captured sample, so the
   figure of merit is a DELTA: the same calm feed through two identical
   monitors, one with a flight recorder attached, one bare.  Everything
   the monitor itself allocates (estimator growth, window closes)
   cancels, leaving the recorder's marginal words/sample — which the
   check_bench gate pins near zero in both directions.  A calm feed
   must also freeze no incidents. *)
let section_postmortem () =
  banner "POSTMORTEM — flight-recorder capture overhead (delta vs bare monitor)";
  let module M = Ptrng_monitor in
  let jitter_n = if smoke then 1 lsl 16 else if quick then 1 lsl 19 else 1 lsl 21 in
  let bits_n = if smoke then 1 lsl 13 else 1 lsl 16 in
  let rng = Ptrng_prng.Rng.create ~seed:2014L () in
  let jit =
    Array.init jitter_n (fun _ -> (Ptrng_prng.Rng.float rng -. 0.5) *. 1e-11)
  in
  let bits = Array.init bits_n (fun _ -> Ptrng_prng.Rng.bool rng) in
  let chunk = 8192 in
  let buf = Float.Array.create chunk in
  let feed_jitter mon =
    let pos = ref 0 in
    while !pos < jitter_n do
      let len = min chunk (jitter_n - !pos) in
      for i = 0 to len - 1 do
        Float.Array.unsafe_set buf i (Array.unsafe_get jit (!pos + i))
      done;
      M.Monitor.feed_jitter_chunk mon buf ~len;
      pos := !pos + len
    done
  in
  let alloc f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  let bare = M.Monitor.create (M.Monitor.default_config ~f0:paper_f0) in
  let wj_bare = alloc (fun () -> feed_jitter bare) in
  let wb_bare = alloc (fun () -> M.Monitor.feed_bits bare bits) in
  let recorded = M.Monitor.create (M.Monitor.default_config ~f0:paper_f0) in
  let recorder =
    M.Flight_recorder.create
      ~provenance:
        {
          M.Flight_recorder.kind = "bench";
          workload = "calm";
          seed = 2014;
          divisor = 1000;
          chunk;
          flicker_block = chunk;
        }
      ()
  in
  M.Monitor.attach_recorder recorded recorder;
  let wj_rec = alloc (fun () -> feed_jitter recorded) in
  let wb_rec = alloc (fun () -> M.Monitor.feed_bits recorded bits) in
  let per value n = value /. float_of_int n in
  let jitter_overhead = per (wj_rec -. wj_bare) jitter_n in
  let bit_overhead = per (wb_rec -. wb_bare) bits_n in
  let incidents = M.Flight_recorder.incident_count recorder in
  Printf.printf "capture overhead  %+6.3f words/sample  (%d jitter samples)\n"
    jitter_overhead jitter_n;
  Printf.printf "capture overhead  %+6.3f words/bit     (%d bits)\n"
    bit_overhead bits_n;
  Printf.printf "incidents frozen on the calm feed: %d\n" incidents;
  [
    ("jitter_samples", Tm.Json.Int jitter_n);
    ("bits", Tm.Json.Int bits_n);
    ("jitter_overhead_words_per_sample", Tm.Json.num jitter_overhead);
    ("bit_overhead_words_per_bit", Tm.Json.num bit_overhead);
    ("incidents", Tm.Json.Int incidents);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel kernel benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let kernel_tests () =
  let open Bechamel in
  let rng = Ptrng_prng.Rng.create ~seed:1L () in
  let g = Ptrng_prng.Gaussian.create rng in
  let fft_n = 1 lsl 14 in
  let fft_re = Array.init fft_n (fun _ -> Ptrng_prng.Gaussian.draw g) in
  let white = Array.init (1 lsl 16) (fun _ -> Ptrng_prng.Gaussian.draw g) in
  let jitter = Array.map (fun v -> v *. 1e-12) white in
  let periods = Array.map (fun v -> 9.7e-9 +. (v *. 1e-12)) white in
  let edges1 = Ptrng_osc.Oscillator.edges_of_periods periods in
  let edges2 = Ptrng_osc.Oscillator.edges_of_periods periods in
  let block =
    let r = Ptrng_prng.Rng.create ~seed:5L () in
    Array.init 20000 (fun _ -> Ptrng_prng.Rng.bool r)
  in
  let curve_points =
    let ns = Ptrng_measure.Variance_curve.log2_grid ~n_min:4 ~n_max:8192 in
    Ptrng_measure.Variance_curve.of_jitter ~f0:paper_f0 ~ns jitter
  in
  [
    Test.make ~name:"gaussian ziggurat draw"
      (Staged.stage (fun () -> ignore (Ptrng_prng.Gaussian.draw g)));
    Test.make ~name:"fft 16k (fwd+inv)"
      (Staged.stage (fun () ->
           let re = Array.copy fft_re and im = Array.make fft_n 0.0 in
           Ptrng_signal.Fft.forward_pow2 ~re ~im;
           Ptrng_signal.Fft.inverse_pow2 ~re ~im));
    Test.make ~name:"flicker synth 64k"
      (Staged.stage (fun () ->
           let model = { Ptrng_noise.Psd_model.h0 = 0.0; hm1 = 1e-6; hm2 = 0.0 } in
           ignore
             (Ptrng_noise.Spectral_synth.generate_frac_freq rng ~model ~fs:1.0 (1 lsl 16))));
    Test.make ~name:"oscillator periods 64k"
      (Staged.stage (fun () ->
           let cfg =
             Ptrng_osc.Oscillator.config ~f0:paper_f0
               ~phase:{ Ptrng_noise.Psd_model.b_th = 138.0; b_fl = 9.6e5 } ()
           in
           ignore (Ptrng_osc.Oscillator.periods rng cfg ~n:(1 lsl 16))));
    Test.make ~name:"allan overlapping m=64 on 64k"
      (Staged.stage (fun () ->
           ignore (Ptrng_stats.Allan.avar_overlapping ~tau0:9.7e-9 ~m:64 white)));
    Test.make ~name:"s_N realizations N=256 on 64k"
      (Staged.stage (fun () ->
           ignore (Ptrng_measure.S_process.realizations ~n:256 jitter)));
    Test.make ~name:"counter q_counts N=64 on 64k"
      (Staged.stage (fun () ->
           ignore (Ptrng_measure.Counter.q_counts ~edges1 ~edges2 ~n:64)));
    Test.make ~name:"variance-curve fit"
      (Staged.stage (fun () -> ignore (Ptrng_measure.Fit.fit ~f0:paper_f0 curve_points)));
    Test.make ~name:"entropy avg (one evaluation)"
      (Staged.stage (fun () -> ignore (Ptrng_model.Entropy.avg_entropy ~phase_std:1.0)));
    Test.make ~name:"AIS31 T1-T4 on one block"
      (Staged.stage (fun () ->
           ignore (Ptrng_ais31.Procedure_a.t1_monobit block);
           ignore (Ptrng_ais31.Procedure_a.t2_poker block);
           ignore (Ptrng_ais31.Procedure_a.t3_runs block);
           ignore (Ptrng_ais31.Procedure_a.t4_long_run block)));
  ]

let section_perf () =
  banner "PERF — Bechamel kernel timings";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"kernels" (kernel_tests ()))
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-44s %16s\n" "kernel" "time per run";
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
        let txt =
          if est > 1e6 then Printf.sprintf "%10.3f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%10.3f us" (est /. 1e3)
          else Printf.sprintf "%10.1f ns" est
        in
        Printf.printf "%-44s %16s\n" name txt;
        Some (name, Tm.Json.num est)
      | _ ->
        Printf.printf "%-44s %16s\n" name "n/a";
        None)
    rows

(* ------------------------------------------------------------------ *)
(* LINT: the static analyzer as a measured workload                    *)
(* ------------------------------------------------------------------ *)

(* Runs ptrng-lint in process over the built .cmt artifacts, so the
   analyzer's own wall time is a tracked bench section and the finding
   counts land in the report (and, via the summary line, in the
   history record).  Roots cover every launch style: "." for an
   artifact tree, ".." for the dune action cwd (_build/default/bench),
   _build/default for `dune exec` from the repo root.  Without
   artifacts the section records skipped=true rather than failing:
   the bench must run on a bare checkout too. *)
let section_lint () =
  banner "LINT — static analyzer over the built artifacts";
  let module A = Ptrng_analysis in
  let scan_dirs = [ "lib"; "bin"; "bench" ] in
  let loader =
    List.fold_left
      (fun acc root ->
        match acc with
        | Some _ -> acc
        | None ->
          let l = A.Loader.load_dirs ~root scan_dirs in
          if l.A.Loader.units = [] then None else Some l)
      None
      [ "."; ".."; "_build/default" ]
  in
  match loader with
  | None ->
    Printf.printf "no .cmt/.cmti artifacts found — section skipped\n";
    [ ("skipped", Tm.Json.Bool true) ]
  | Some loader ->
    let baseline =
      List.fold_left
        (fun acc path ->
          match acc with
          | Some _ -> acc
          | None -> (
            if not (Sys.file_exists path) then None
            else match A.Baseline.load ~path with Ok b -> Some b | Error _ -> None))
        None
        [ "lint_baseline.json"; "../lint_baseline.json" ]
      |> Option.value ~default:A.Baseline.empty
    in
    let rules =
      match A.Rules.select "all" with Ok r -> r | Error _ -> []
    in
    let report, _all = A.Engine.lint ~rules ~baseline loader in
    let summary = A.Report.summary_line report in
    print_endline summary;
    if Atomic.get lint_summary = None then Atomic.set lint_summary (Some summary);
    [
      ("units", Tm.Json.Int report.A.Report.units);
      ("errors", Tm.Json.Int (A.Report.errors report));
      ("warnings", Tm.Json.Int (A.Report.warnings report));
      ("info", Tm.Json.Int (A.Report.infos report));
      ("baselined", Tm.Json.Int report.A.Report.suppressed);
      ("rules", Tm.Json.Int (List.length rules));
    ]

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)
(* ------------------------------------------------------------------ *)

let section_json (span : Tm.Span.t) =
  let kv =
    try List.assoc span.name (Atomic.get section_results)
    with Not_found -> []
  in
  let throughput =
    List.filter_map
      (fun (key, v) ->
        match (key, v) with
        | "periods", Tm.Json.Int periods when span.wall_s > 0.0 ->
          Some
            ("periods_per_sec", Tm.Json.num (float_of_int periods /. span.wall_s))
        | _ -> None)
      kv
  in
  Tm.Json.Obj
    ([
       ("name", Tm.Json.String span.name);
       ("wall_s", Tm.Json.num span.wall_s);
       ("alloc_bytes", Tm.Json.num span.alloc_bytes);
     ]
    @ (if throughput = [] then [] else [ ("throughput", Tm.Json.Obj throughput) ])
    @ [ ("results", Tm.Json.Obj kv) ]
    @
    match span.children with
    | [] -> []
    | children -> [ ("trace", Tm.Json.List (List.map Tm.Span.to_json children)) ])

let write_report ~kernels ~total_s =
  let sections = List.map section_json (Tm.Span.roots ()) in
  let snapshot = Tm.Sink.snapshot_json () in
  let metrics =
    match Tm.Json.member "metrics" snapshot with
    | Some m -> m
    | None -> Tm.Json.Obj []
  in
  let report =
    Tm.Json.Obj
      [
        ("schema", Tm.Json.String "ptrng-bench/2");
        ("mode", Tm.Json.String mode);
        ("sha", Tm.Json.String sha);
        ("domains", Tm.Json.Int pool_domains);
        ("log2_periods", Tm.Json.Int log2_periods);
        ("total_s", Tm.Json.num total_s);
        ("sections", Tm.Json.List sections);
        ("kernels", Tm.Json.Obj kernels);
        ("metrics", metrics);
      ]
  in
  (try
     let oc = open_out out_path in
     output_string oc (Tm.Json.to_string_pretty report);
     output_char oc '\n';
     close_out oc
   with Sys_error e ->
     Printf.eprintf "bench: cannot write report: %s\n" e;
     exit 1);
  Printf.printf "\nwrote %s\n" out_path;
  report

(* One history record per bench invocation, appended after the report
   is on disk.  Unwritable history is a warning, not a failed bench. *)
let append_history report =
  match
    History.record_of_report ~sha ~time_unix:(Unix.time ()) ?lint:(Atomic.get lint_summary)
      report
  with
  | Error e -> Printf.eprintf "bench: cannot summarize report for history: %s\n" e
  | Ok record -> (
    match History.append ~path:history_path record with
    | Ok () -> Printf.printf "appended history record to %s\n" history_path
    | Error e ->
      Printf.eprintf "bench: cannot append history %s: %s\n" history_path e)

let print_history_table () =
  match History.load ~path:history_path with
  | Error e ->
    Printf.eprintf "bench: cannot read history %s: %s\n" history_path e;
    exit 1
  | Ok records -> Format.printf "%a" History.pp_table records

let () =
  if history_table then begin
    print_history_table ();
    exit 0
  end;
  Tm.Registry.enable ();
  if perfetto_out <> None then Tm.Runtime_profile.start ();
  let t0 = Unix.gettimeofday () in
  let analysis = ref None in
  run_section "fig7" (fun () ->
      let a = section_fig7 () in
      analysis := Some a;
      fig7_kv a);
  run_section "extraction" (fun () ->
      section_extraction (Option.get !analysis));
  run_section "model" section_model;
  run_section "entropy" section_entropy;
  run_section "scaling" section_scaling;
  run_section "online" section_online;
  run_section "restart" section_restart;
  run_section "allan" section_allan;
  run_section "noise_synth" section_noise_synth;
  run_section "variance_curve" section_variance_curve;
  run_section "monitor" section_monitor;
  run_section "scenario" section_scenario;
  run_section "postmortem" section_postmortem;
  run_section "lint" section_lint;
  let kernels = if no_perf then [] else Tm.Span.with_ ~name:"perf" section_perf in
  let total_s = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal bench time: %.1f s\n" total_s;
  Tm.Runtime_profile.stop ();
  (match perfetto_out with
  | None -> ()
  | Some path -> (
    try
      Tm.Trace_export.write path;
      Printf.printf "wrote perfetto trace %s\n" path
    with Sys_error e -> Printf.eprintf "bench: cannot write trace: %s\n" e));
  let report = write_report ~kernels ~total_s in
  append_history report
