(* Smoke check for the bench harness: parse the JSON report and assert
   the fields the perf-trajectory tooling relies on, so `dune runtest`
   fails loudly if BENCH_1.json ever stops being produced or loses its
   schema (see docs/OBSERVABILITY.md). *)

module Json = Ptrng_telemetry.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

let get path j key =
  match Json.member key j with
  | Some v -> v
  | None -> fail "missing field %s.%s" path key

let number path j key =
  match Json.to_float (get path j key) with
  | Some v -> v
  | None -> fail "field %s.%s is not numeric" path key

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_1.json" in
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  let report =
    try Json.of_string contents with Failure e -> fail "%s does not parse: %s" path e
  in
  (match Json.member "schema" report with
  | Some (Json.String "ptrng-bench/2") -> ()
  | _ -> fail "bad or missing schema tag");
  ignore (number "report" report "total_s");
  let domains = number "report" report "domains" in
  if not (domains >= 1.0) then fail "domains must be >= 1";
  let sections =
    match get "report" report "sections" with
    | Json.List l -> l
    | _ -> fail "sections is not a list"
  in
  if sections = [] then fail "no sections recorded";
  let find_section name =
    match
      List.find_opt
        (fun s -> Json.member "name" s = Some (Json.String name))
        sections
    with
    | Some s -> s
    | None -> fail "section %s missing" name
  in
  List.iter
    (fun s ->
      let wall = number "section" s "wall_s" in
      if not (wall >= 0.0) then fail "negative section wall time")
    sections;
  (* Fig. 7 accumulation must report throughput and the fitted model. *)
  let fig7 = find_section "fig7" in
  let throughput = get "fig7" fig7 "throughput" in
  let pps = number "fig7.throughput" throughput "periods_per_sec" in
  if not (pps > 0.0) then fail "fig7 periods_per_sec not positive";
  let fig7_results = get "fig7" fig7 "results" in
  ignore (number "fig7.results" fig7_results "fit_a");
  ignore (number "fig7.results" fig7_results "fit_b");
  let extraction = get "extraction" (find_section "extraction") "results" in
  ignore (number "extraction.results" extraction "b_th");
  ignore (number "extraction.results" extraction "sigma_th_ps");
  (* Parallel sections must report the dual-run timing fields and prove
     the output did not depend on the domain count. *)
  List.iter
    (fun name ->
      let results = get name (find_section name) "results" in
      let ctx = name ^ ".results" in
      if not (number ctx results "wall_1_s" >= 0.0) then
        fail "%s.wall_1_s negative" name;
      if not (number ctx results "wall_par_s" >= 0.0) then
        fail "%s.wall_par_s negative" name;
      if not (number ctx results "speedup" > 0.0) then
        fail "%s.speedup not positive" name;
      if not (number ctx results "domains" >= 1.0) then
        fail "%s.domains must be >= 1" name;
      match Json.member "deterministic" results with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> fail "%s output depends on the domain count" name
      | _ -> fail "%s.deterministic missing" name)
    [ "noise_synth"; "variance_curve" ];
  (* The telemetry snapshot must show the accumulation actually ran. *)
  let metrics = get "report" report "metrics" in
  let periods = number "metrics" metrics "ptrng_measure_periods_accumulated_total" in
  if not (periods > 0.0) then fail "ptrng_measure_periods_accumulated_total is zero";
  Printf.printf "check_bench: %s ok (%d sections, %.3e periods/s)\n" path
    (List.length sections) pps
