(* Gate for the bench harness and its perf trajectory.

     check_bench [REPORT] [--history FILE] [--baseline FILE]
                 [--max-regression PCT] [--warn-only]

   Always: parse REPORT (default BENCH_1.json) and assert the fields
   the perf-trajectory tooling relies on, so `dune runtest` fails
   loudly if the report ever stops being produced or loses its schema.

   --history FILE        also validate a bench-history JSONL file
                         (schema ptrng-bench-history/1, >= 1 record).
   --baseline FILE       also compare REPORT's section wall times
                         against FILE (a bench report or a history
                         record); exit 1 if any section regressed by
                         more than --max-regression PCT (default 25).
   --warn-only           print regressions but exit 0 (soft gate for
                         noisy 1-core CI runners).

   See docs/OBSERVABILITY.md and docs/PROFILING.md. *)

module Json = Ptrng_telemetry.Json
module History = Bench_history.History

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

let get path j key =
  match Json.member key j with
  | Some v -> v
  | None -> fail "missing field %s.%s" path key

let number path j key =
  match Json.to_float (get path j key) with
  | Some v -> v
  | None -> fail "field %s.%s is not numeric" path key

(* ---------------- argument parsing ---------------- *)

type opts = {
  report : string;
  history : string option;
  baseline : string option;
  max_regression_pct : float;
  warn_only : bool;
}

let parse_args () =
  let opts =
    ref
      {
        report = "BENCH_1.json";
        history = None;
        baseline = None;
        max_regression_pct = 25.0;
        warn_only = false;
      }
  in
  let rec go = function
    | [] -> ()
    | "--history" :: path :: rest ->
      opts := { !opts with history = Some path };
      go rest
    | "--baseline" :: path :: rest ->
      opts := { !opts with baseline = Some path };
      go rest
    | "--max-regression" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 -> opts := { !opts with max_regression_pct = p }
      | _ -> fail "--max-regression expects a non-negative number, got %S" pct);
      go rest
    | "--warn-only" :: rest ->
      opts := { !opts with warn_only = true };
      go rest
    | ("--history" | "--baseline" | "--max-regression") :: [] ->
      fail "missing argument for the last flag"
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      fail "unknown flag %s" arg
    | path :: rest ->
      opts := { !opts with report = path };
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  !opts

let read_json path =
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  try Json.of_string contents with Failure e -> fail "%s does not parse: %s" path e

(* ---------------- report schema validation ---------------- *)

let validate_report path report =
  (match Json.member "schema" report with
  | Some (Json.String "ptrng-bench/2") -> ()
  | _ -> fail "bad or missing schema tag");
  ignore (number "report" report "total_s");
  let domains = number "report" report "domains" in
  if not (domains >= 1.0) then fail "domains must be >= 1";
  let sections =
    match get "report" report "sections" with
    | Json.List l -> l
    | _ -> fail "sections is not a list"
  in
  if sections = [] then fail "no sections recorded";
  let find_section name =
    match
      List.find_opt
        (fun s -> Json.member "name" s = Some (Json.String name))
        sections
    with
    | Some s -> s
    | None -> fail "section %s missing" name
  in
  List.iter
    (fun s ->
      let wall = number "section" s "wall_s" in
      if not (wall >= 0.0) then fail "negative section wall time")
    sections;
  (* Fig. 7 accumulation must report throughput and the fitted model. *)
  let fig7 = find_section "fig7" in
  let throughput = get "fig7" fig7 "throughput" in
  let pps = number "fig7.throughput" throughput "periods_per_sec" in
  if not (pps > 0.0) then fail "fig7 periods_per_sec not positive";
  let fig7_results = get "fig7" fig7 "results" in
  ignore (number "fig7.results" fig7_results "fit_a");
  ignore (number "fig7.results" fig7_results "fit_b");
  let extraction = get "extraction" (find_section "extraction") "results" in
  ignore (number "extraction.results" extraction "b_th");
  ignore (number "extraction.results" extraction "sigma_th_ps");
  (* Parallel sections must report the dual-run timing fields and prove
     the output did not depend on the domain count. *)
  List.iter
    (fun name ->
      let results = get name (find_section name) "results" in
      let ctx = name ^ ".results" in
      if not (number ctx results "wall_1_s" >= 0.0) then
        fail "%s.wall_1_s negative" name;
      if not (number ctx results "wall_par_s" >= 0.0) then
        fail "%s.wall_par_s negative" name;
      if not (number ctx results "speedup" > 0.0) then
        fail "%s.speedup not positive" name;
      if not (number ctx results "domains" >= 1.0) then
        fail "%s.domains must be >= 1" name;
      match Json.member "deterministic" results with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> fail "%s output depends on the domain count" name
      | _ -> fail "%s.deterministic missing" name)
    [ "noise_synth"; "variance_curve" ];
  (* The telemetry snapshot must show the accumulation actually ran. *)
  let metrics = get "report" report "metrics" in
  let periods = number "metrics" metrics "ptrng_measure_periods_accumulated_total" in
  if not (periods > 0.0) then fail "ptrng_measure_periods_accumulated_total is zero";
  Printf.printf "check_bench: %s ok (%d sections, %.3e periods/s)\n" path
    (List.length sections) pps

(* ---------------- history validation ---------------- *)

let validate_history path =
  match History.load ~path with
  | Error e -> fail "history %s: %s" path e
  | Ok [] -> fail "history %s has no records" path
  | Ok records ->
    List.iteri
      (fun i r ->
        match History.validate_record r with
        | Ok () -> ()
        | Error e -> fail "history %s record %d: %s" path (i + 1) e)
      records;
    Printf.printf "check_bench: %s ok (%d history records)\n" path
      (List.length records)

(* ---------------- regression gate ---------------- *)

let check_baseline ~warn_only ~max_regression_pct ~baseline_path ~report =
  let baseline = read_json baseline_path in
  match History.compare_sections ~baseline ~current:report () with
  | Error e -> fail "cannot compare against %s: %s" baseline_path e
  | Ok [] -> fail "no comparable sections against %s" baseline_path
  | Ok compared ->
    List.iter
      (fun (c : History.comparison) ->
        Printf.printf "check_bench:   %-16s %9.3f s -> %9.3f s  (%+.1f%%)\n"
          c.History.section c.History.base_wall_s c.History.wall_s
          c.History.change_pct)
      compared;
    let regressed = History.regressions ~max_regression_pct compared in
    if regressed = [] then
      Printf.printf
        "check_bench: no regression beyond %.0f%% against %s (%d sections)\n"
        max_regression_pct baseline_path (List.length compared)
    else begin
      List.iter
        (fun (c : History.comparison) ->
          Printf.eprintf
            "check_bench: %s: section %s regressed %.1f%% (%.3f s -> %.3f s, \
             tolerance %.0f%%)\n"
            (if warn_only then "warning" else "FAIL")
            c.History.section c.History.change_pct c.History.base_wall_s
            c.History.wall_s max_regression_pct)
        regressed;
      if not warn_only then exit 1
    end

let () =
  let opts = parse_args () in
  let report = read_json opts.report in
  validate_report opts.report report;
  Option.iter validate_history opts.history;
  match opts.baseline with
  | None -> ()
  | Some baseline_path ->
    check_baseline ~warn_only:opts.warn_only
      ~max_regression_pct:opts.max_regression_pct ~baseline_path ~report
