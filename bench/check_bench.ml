(* Gate for the bench harness and its perf trajectory.

     check_bench [REPORT] [--history FILE] [--baseline FILE]
                 [--max-regression PCT] [--max-alloc-regression PCT]
                 [--max-fig7-bytes-per-period B] [--warn-only]

   Always: parse REPORT (default BENCH_1.json) and assert the fields
   the perf-trajectory tooling relies on, so `dune runtest` fails
   loudly if the report ever stops being produced or loses its schema.

   --history FILE        also validate a bench-history JSONL file
                         (schema ptrng-bench-history/1, >= 1 record).
   --baseline FILE       also compare REPORT's section wall times
                         against FILE (a bench report or a history
                         record); exit 1 if any section regressed by
                         more than --max-regression PCT (default 25).
   --max-alloc-regression PCT
                         with --baseline: also compare per-section
                         alloc_bytes; exit 1 if any section allocates
                         more than PCT beyond the baseline.  Off by
                         default (allocation is deterministic, so no
                         noise tolerance is needed once enabled).
   --max-fig7-bytes-per-period B
                         absolute allocation budget for the hot path:
                         fig7.alloc_bytes divided by the simulated
                         period count must not exceed B bytes.  This
                         is the streaming-pipeline gate — it needs no
                         baseline file and cannot drift with one.
   --require-scenario    fail if the report lacks a scenario section.
                         Fresh bench runs must include one; committed
                         snapshots from before the scenario engine are
                         exempt.  A scenario section that IS present is
                         always validated, flag or not.
   --require-postmortem  fail if the report lacks a postmortem section
                         (same grandfathering rule).  A postmortem
                         section that IS present is always gated: the
                         flight recorder's capture overhead must stay
                         within 0.2 words per sample and per bit in
                         both directions, and a calm feed must freeze
                         zero incidents.
   --require-lint        fail if the report lacks a lint section (the
                         in-process ptrng-lint run) or records it as
                         skipped.  A lint section that IS present and
                         ran is always gated, flag or not: unbaselined
                         errors mean the analyzed tree is dirty.
   --warn-only           print regressions but exit 0 (soft gate for
                         noisy 1-core CI runners).

   See docs/OBSERVABILITY.md, docs/PROFILING.md and docs/STREAMING.md. *)

module Json = Ptrng_telemetry.Json
module History = Bench_history.History

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_bench: " ^ m); exit 1) fmt

let get path j key =
  match Json.member key j with
  | Some v -> v
  | None -> fail "missing field %s.%s" path key

let number path j key =
  match Json.to_float (get path j key) with
  | Some v -> v
  | None -> fail "field %s.%s is not numeric" path key

(* ---------------- argument parsing ---------------- *)

type opts = {
  report : string;
  history : string option;
  baseline : string option;
  max_regression_pct : float;
  max_alloc_regression_pct : float option;
  max_fig7_bytes_per_period : float option;
  require_scenario : bool;
  require_postmortem : bool;
  require_lint : bool;
  warn_only : bool;
}

let parse_args () =
  let opts =
    ref
      {
        report = "BENCH_1.json";
        history = None;
        baseline = None;
        max_regression_pct = 25.0;
        max_alloc_regression_pct = None;
        max_fig7_bytes_per_period = None;
        require_scenario = false;
        require_postmortem = false;
        require_lint = false;
        warn_only = false;
      }
  in
  let rec go = function
    | [] -> ()
    | "--history" :: path :: rest ->
      opts := { !opts with history = Some path };
      go rest
    | "--baseline" :: path :: rest ->
      opts := { !opts with baseline = Some path };
      go rest
    | "--max-regression" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 -> opts := { !opts with max_regression_pct = p }
      | _ -> fail "--max-regression expects a non-negative number, got %S" pct);
      go rest
    | "--max-alloc-regression" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 ->
        opts := { !opts with max_alloc_regression_pct = Some p }
      | _ ->
        fail "--max-alloc-regression expects a non-negative number, got %S" pct);
      go rest
    | "--max-fig7-bytes-per-period" :: bytes :: rest ->
      (match float_of_string_opt bytes with
      | Some b when b > 0.0 ->
        opts := { !opts with max_fig7_bytes_per_period = Some b }
      | _ ->
        fail "--max-fig7-bytes-per-period expects a positive number, got %S"
          bytes);
      go rest
    | "--require-scenario" :: rest ->
      opts := { !opts with require_scenario = true };
      go rest
    | "--require-postmortem" :: rest ->
      opts := { !opts with require_postmortem = true };
      go rest
    | "--require-lint" :: rest ->
      opts := { !opts with require_lint = true };
      go rest
    | "--warn-only" :: rest ->
      opts := { !opts with warn_only = true };
      go rest
    | ( "--history" | "--baseline" | "--max-regression"
      | "--max-alloc-regression" | "--max-fig7-bytes-per-period" )
      :: [] ->
      fail "missing argument for the last flag"
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
      fail "unknown flag %s" arg
    | path :: rest ->
      opts := { !opts with report = path };
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  !opts

let read_json path =
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> fail "cannot read %s: %s" path e
  in
  try Json.of_string contents with Failure e -> fail "%s does not parse: %s" path e

(* ---------------- report schema validation ---------------- *)

let validate_report path report =
  (match Json.member "schema" report with
  | Some (Json.String "ptrng-bench/2") -> ()
  | _ -> fail "bad or missing schema tag");
  ignore (number "report" report "total_s");
  let domains = number "report" report "domains" in
  if not (domains >= 1.0) then fail "domains must be >= 1";
  let sections =
    match get "report" report "sections" with
    | Json.List l -> l
    | _ -> fail "sections is not a list"
  in
  if sections = [] then fail "no sections recorded";
  let find_section name =
    match
      List.find_opt
        (fun s -> Json.member "name" s = Some (Json.String name))
        sections
    with
    | Some s -> s
    | None -> fail "section %s missing" name
  in
  List.iter
    (fun s ->
      let wall = number "section" s "wall_s" in
      if not (wall >= 0.0) then fail "negative section wall time")
    sections;
  (* Fig. 7 accumulation must report throughput and the fitted model. *)
  let fig7 = find_section "fig7" in
  let throughput = get "fig7" fig7 "throughput" in
  let pps = number "fig7.throughput" throughput "periods_per_sec" in
  if not (pps > 0.0) then fail "fig7 periods_per_sec not positive";
  let fig7_results = get "fig7" fig7 "results" in
  ignore (number "fig7.results" fig7_results "fit_a");
  ignore (number "fig7.results" fig7_results "fit_b");
  let extraction = get "extraction" (find_section "extraction") "results" in
  ignore (number "extraction.results" extraction "b_th");
  ignore (number "extraction.results" extraction "sigma_th_ps");
  (* Parallel sections must report the dual-run timing fields and prove
     the output did not depend on the domain count. *)
  List.iter
    (fun name ->
      let results = get name (find_section name) "results" in
      let ctx = name ^ ".results" in
      if not (number ctx results "wall_1_s" >= 0.0) then
        fail "%s.wall_1_s negative" name;
      if not (number ctx results "wall_par_s" >= 0.0) then
        fail "%s.wall_par_s negative" name;
      if not (number ctx results "speedup" > 0.0) then
        fail "%s.speedup not positive" name;
      if not (number ctx results "domains" >= 1.0) then
        fail "%s.domains must be >= 1" name;
      match Json.member "deterministic" results with
      | Some (Json.Bool true) -> ()
      | Some (Json.Bool false) -> fail "%s output depends on the domain count" name
      | _ -> fail "%s.deterministic missing" name)
    [ "noise_synth"; "variance_curve" ];
  (* The telemetry snapshot must show the accumulation actually ran. *)
  let metrics = get "report" report "metrics" in
  let periods = number "metrics" metrics "ptrng_measure_periods_accumulated_total" in
  if not (periods > 0.0) then fail "ptrng_measure_periods_accumulated_total is zero";
  Printf.printf "check_bench: %s ok (%d sections, %.3e periods/s)\n" path
    (List.length sections) pps

(* ---------------- scenario section ---------------- *)

(* The scenario section runs fault schedules through the monitor and
   scores detection, so its results are the bench's robustness gate: a
   report that records fault scenarios with nothing detected, or with
   pre-onset false alarms, means the detection stack regressed.  All
   counts are deterministic (fixed seed), so the gate is exact. *)
let validate_scenario ~path ~required report =
  let sections =
    match get "report" report "sections" with
    | Json.List l -> l
    | _ -> fail "sections is not a list"
  in
  match
    List.find_opt
      (fun s -> Json.member "name" s = Some (Json.String "scenario"))
      sections
  with
  | None ->
    if required then fail "section scenario missing (--require-scenario)"
    else
      Printf.printf
        "check_bench: %s has no scenario section (pre-scenario snapshot)\n"
        path
  | Some s ->
    let results = get "scenario" s "results" in
    let ctx = "scenario.results" in
    let scenarios = number ctx results "scenarios" in
    if not (scenarios >= 1.0) then fail "scenario.scenarios must be >= 1";
    if not (number ctx results "periods" > 0.0) then
      fail "scenario.periods not positive";
    let detected = number ctx results "detected" in
    if not (detected >= 1.0) then
      fail "no scenario detected its fault — the detection stack regressed";
    if detected > scenarios then fail "scenario.detected exceeds scenarios";
    let recovered = number ctx results "recovered" in
    if recovered < 0.0 || recovered > detected then
      fail "scenario.recovered out of range";
    let false_alarms = number ctx results "false_alarms" in
    if false_alarms <> 0.0 then
      fail "scenario runs raised %.0f pre-onset false alarms" false_alarms;
    if not (number ctx results "max_latency_windows" >= 0.0) then
      fail "scenario.max_latency_windows negative";
    Printf.printf
      "check_bench: %s scenario ok (%.0f scenarios, %.0f detected, %.0f \
       recovered)\n"
      path scenarios detected recovered

(* ---------------- postmortem section ---------------- *)

(* The postmortem section measures the flight recorder's marginal
   capture cost as a delta against a bare monitor over the same calm
   feed.  The recorder's contract is zero allocation per sample, so
   the words/sample budget is a hair above zero — enough for GC noise,
   tight enough that a boxing regression on the capture hot path fails
   the build.  The bound is two-sided (Float.abs): a large negative
   delta means the measurement itself broke, which must not pass as
   "zero overhead".  A calm feed that freezes incidents means the
   trigger wiring regressed. *)
let postmortem_overhead_budget = 0.2

let validate_postmortem ~path ~required report =
  let sections =
    match get "report" report "sections" with
    | Json.List l -> l
    | _ -> fail "sections is not a list"
  in
  match
    List.find_opt
      (fun s -> Json.member "name" s = Some (Json.String "postmortem"))
      sections
  with
  | None ->
    if required then fail "section postmortem missing (--require-postmortem)"
    else
      Printf.printf
        "check_bench: %s has no postmortem section (pre-flight-recorder \
         snapshot)\n"
        path
  | Some s ->
    let results = get "postmortem" s "results" in
    let ctx = "postmortem.results" in
    if not (number ctx results "jitter_samples" >= 1.0) then
      fail "postmortem.jitter_samples must be >= 1";
    if not (number ctx results "bits" >= 1.0) then
      fail "postmortem.bits must be >= 1";
    let jitter_overhead = number ctx results "jitter_overhead_words_per_sample" in
    if Float.abs jitter_overhead > postmortem_overhead_budget then
      fail
        "flight-recorder capture costs %.3f words/jitter sample (budget \
         ±%.1f) — the zero-allocation capture path regressed"
        jitter_overhead postmortem_overhead_budget;
    let bit_overhead = number ctx results "bit_overhead_words_per_bit" in
    if Float.abs bit_overhead > postmortem_overhead_budget then
      fail
        "flight-recorder capture costs %.3f words/bit (budget ±%.1f) — the \
         zero-allocation capture path regressed"
        bit_overhead postmortem_overhead_budget;
    let incidents = number ctx results "incidents" in
    if incidents <> 0.0 then
      fail "calm bench feed froze %.0f incidents — the trigger wiring regressed"
        incidents;
    Printf.printf
      "check_bench: %s postmortem ok (%+.3f words/sample, %+.3f words/bit, 0 \
       incidents)\n"
      path jitter_overhead bit_overhead

(* ---------------- lint section ---------------- *)

(* The lint section is the static analyzer run as a measured workload:
   its counts prove the analyzed tree was clean when the bench ran.
   Unbaselined errors always fail — a report advertising a lint run
   with errors is worse than no lint section at all.  Reports from
   environments without .cmt artifacts record skipped=true; that
   passes unless --require-lint insists on a real run. *)
let validate_lint ~path ~required report =
  let sections =
    match get "report" report "sections" with
    | Json.List l -> l
    | _ -> fail "sections is not a list"
  in
  match
    List.find_opt
      (fun s -> Json.member "name" s = Some (Json.String "lint"))
      sections
  with
  | None ->
    if required then fail "section lint missing (--require-lint)"
    else
      Printf.printf "check_bench: %s has no lint section (pre-lint snapshot)\n"
        path
  | Some s ->
    let results = get "lint" s "results" in
    if Json.member "skipped" results = Some (Json.Bool true) then begin
      if required then
        fail "lint section ran without artifacts (--require-lint)"
      else
        Printf.printf "check_bench: %s lint section skipped (no artifacts)\n"
          path
    end
    else begin
      let ctx = "lint.results" in
      if not (number ctx results "units" >= 1.0) then
        fail "lint.units must be >= 1";
      if not (number ctx results "rules" >= 1.0) then
        fail "lint.rules must be >= 1";
      let errors = number ctx results "errors" in
      if errors <> 0.0 then
        fail "lint section records %.0f unbaselined error(s) — the tree is dirty"
          errors;
      if number ctx results "warnings" < 0.0 then fail "lint.warnings negative";
      if number ctx results "baselined" < 0.0 then fail "lint.baselined negative";
      Printf.printf
        "check_bench: %s lint ok (%.0f units, 0 errors, %.0f warnings, %.0f \
         baselined)\n"
        path (number ctx results "units")
        (number ctx results "warnings")
        (number ctx results "baselined")
    end

(* ---------------- hot-path allocation budget ---------------- *)

(* fig7 drives Multilevel.characterize over the whole simulated trace,
   so its alloc_bytes per simulated period is the figure of merit for
   the streaming pipeline: a budget of a few machine words per period
   proves the hot path reuses its buffers instead of materializing
   traces.  The period count comes from fig7.results.periods when the
   report records it, else from 2^log2_periods at the report root. *)
let check_bytes_per_period ~path ~limit report =
  let sections =
    match get "report" report "sections" with
    | Json.List l -> l
    | _ -> fail "sections is not a list"
  in
  let fig7 =
    match
      List.find_opt
        (fun s -> Json.member "name" s = Some (Json.String "fig7"))
        sections
    with
    | Some s -> s
    | None -> fail "section fig7 missing"
  in
  let alloc = number "fig7" fig7 "alloc_bytes" in
  let periods =
    match
      Option.bind (Json.member "results" fig7) (fun r ->
          Option.bind (Json.member "periods" r) Json.to_float)
    with
    | Some p when p > 0.0 -> p
    | _ -> (
      match Json.to_float (get "report" report "log2_periods") with
      | Some l when l >= 1.0 -> Float.of_int (1 lsl int_of_float l)
      | _ -> fail "cannot determine the fig7 period count")
  in
  let per_period = alloc /. periods in
  if per_period > limit then
    fail
      "fig7 allocates %.1f bytes/period (%.3e bytes over %.0f periods), \
       budget is %.1f — the hot path is allocating again"
      per_period alloc periods limit
  else
    Printf.printf
      "check_bench: %s fig7 allocation %.1f bytes/period (budget %.1f)\n" path
      per_period limit

(* ---------------- history validation ---------------- *)

let validate_history path =
  match History.load ~path with
  | Error e -> fail "history %s: %s" path e
  | Ok [] -> fail "history %s has no records" path
  | Ok records ->
    List.iteri
      (fun i r ->
        match History.validate_record r with
        | Ok () -> ()
        | Error e -> fail "history %s record %d: %s" path (i + 1) e)
      records;
    Printf.printf "check_bench: %s ok (%d history records)\n" path
      (List.length records)

(* ---------------- regression gate ---------------- *)

let check_alloc_baseline ~warn_only ~max_alloc_regression_pct ~baseline_path
    ~baseline ~report =
  match History.compare_alloc ~baseline ~current:report () with
  | Error e -> fail "cannot compare allocation against %s: %s" baseline_path e
  | Ok [] ->
    (* Old history records lack alloc_bytes; a silent pass would make
       the gate a no-op, so say the comparison was empty. *)
    Printf.printf
      "check_bench: no sections with alloc_bytes on both sides of %s\n"
      baseline_path
  | Ok compared ->
    List.iter
      (fun (c : History.alloc_comparison) ->
        Printf.printf "check_bench:   %-16s %11.0f B -> %11.0f B  (%+.1f%%)\n"
          c.History.section c.History.base_alloc_bytes c.History.alloc_bytes
          c.History.alloc_change_pct)
      compared;
    let regressed =
      History.alloc_regressions ~max_alloc_regression_pct compared
    in
    if regressed = [] then
      Printf.printf
        "check_bench: no allocation regression beyond %.0f%% against %s (%d \
         sections)\n"
        max_alloc_regression_pct baseline_path (List.length compared)
    else begin
      List.iter
        (fun (c : History.alloc_comparison) ->
          Printf.eprintf
            "check_bench: %s: section %s allocates %.1f%% more (%.0f B -> \
             %.0f B, tolerance %.0f%%)\n"
            (if warn_only then "warning" else "FAIL")
            c.History.section c.History.alloc_change_pct
            c.History.base_alloc_bytes c.History.alloc_bytes
            max_alloc_regression_pct)
        regressed;
      if not warn_only then exit 1
    end

let check_baseline ~warn_only ~max_regression_pct ~baseline_path ~baseline
    ~report =
  match History.compare_sections ~baseline ~current:report () with
  | Error e -> fail "cannot compare against %s: %s" baseline_path e
  | Ok [] -> fail "no comparable sections against %s" baseline_path
  | Ok compared ->
    List.iter
      (fun (c : History.comparison) ->
        Printf.printf "check_bench:   %-16s %9.3f s -> %9.3f s  (%+.1f%%)\n"
          c.History.section c.History.base_wall_s c.History.wall_s
          c.History.change_pct)
      compared;
    let regressed = History.regressions ~max_regression_pct compared in
    if regressed = [] then
      Printf.printf
        "check_bench: no regression beyond %.0f%% against %s (%d sections)\n"
        max_regression_pct baseline_path (List.length compared)
    else begin
      List.iter
        (fun (c : History.comparison) ->
          Printf.eprintf
            "check_bench: %s: section %s regressed %.1f%% (%.3f s -> %.3f s, \
             tolerance %.0f%%)\n"
            (if warn_only then "warning" else "FAIL")
            c.History.section c.History.change_pct c.History.base_wall_s
            c.History.wall_s max_regression_pct)
        regressed;
      if not warn_only then exit 1
    end

let () =
  let opts = parse_args () in
  let report = read_json opts.report in
  validate_report opts.report report;
  validate_scenario ~path:opts.report ~required:opts.require_scenario report;
  validate_postmortem ~path:opts.report ~required:opts.require_postmortem report;
  validate_lint ~path:opts.report ~required:opts.require_lint report;
  Option.iter
    (fun limit -> check_bytes_per_period ~path:opts.report ~limit report)
    opts.max_fig7_bytes_per_period;
  Option.iter validate_history opts.history;
  match opts.baseline with
  | None -> ()
  | Some baseline_path ->
    let baseline = read_json baseline_path in
    check_baseline ~warn_only:opts.warn_only
      ~max_regression_pct:opts.max_regression_pct ~baseline_path ~baseline
      ~report;
    Option.iter
      (fun max_alloc_regression_pct ->
        check_alloc_baseline ~warn_only:opts.warn_only
          ~max_alloc_regression_pct ~baseline_path ~baseline ~report)
      opts.max_alloc_regression_pct
