(* Bench-history records and regression comparison.

   Every bench run appends one summarized JSONL record (schema
   ptrng-bench-history/1) — git sha, mode, domain count, total wall
   time and per-section wall times — so the perf trajectory of the
   repo is a committed, machine-readable time series.  check_bench
   compares two reports' section walls against a tolerance and
   bench --history-table prints the trend.  See docs/PROFILING.md. *)

module Json = Ptrng_telemetry.Json

let schema = "ptrng-bench-history/1"

type section = { name : string; wall_s : float; alloc_bytes : float option }

(* Extract (name, wall_s, alloc_bytes) triples from anything carrying a
   bench-shaped "sections" list — a full ptrng-bench/2 report or a
   history record.  alloc_bytes is optional: pre-allocation-tracking
   history records simply lack it. *)
let sections_of j =
  match Json.member "sections" j with
  | Some (Json.List l) ->
    Ok
      (List.filter_map
         (fun s ->
           match (Json.member "name" s, Json.member "wall_s" s) with
           | Some (Json.String name), Some w ->
             Option.map
               (fun wall_s ->
                 let alloc_bytes =
                   Option.bind (Json.member "alloc_bytes" s) Json.to_float
                 in
                 { name; wall_s; alloc_bytes })
               (Json.to_float w)
           | _ -> None)
         l)
  | _ -> Error "no sections list"

let str_field j key =
  match Json.member key j with Some (Json.String s) -> Some s | _ -> None

let num_field j key = Option.bind (Json.member key j) Json.to_float

let record_of_report ?(sha = "unknown") ?(time_unix = 0.0) ?lint report =
  match sections_of report with
  | Error e -> Error e
  | Ok sections ->
    let mode = Option.value ~default:"unknown" (str_field report "mode") in
    let domains =
      match num_field report "domains" with Some d -> int_of_float d | None -> 1
    in
    let total_s = Option.value ~default:0.0 (num_field report "total_s") in
    let lint_field =
      match lint with Some l -> [ ("lint", Json.String l) ] | None -> []
    in
    Ok
      (Json.Obj
         ([
           ("schema", Json.String schema);
           ("sha", Json.String sha);
           ("time_unix", Json.num time_unix);
           ("mode", Json.String mode);
           ("domains", Json.Int domains);
           ("total_s", Json.num total_s);
         ]
         @ lint_field
         @ [
             ( "sections",
               Json.List
                 (List.map
                    (fun s ->
                      Json.Obj
                        ([
                           ("name", Json.String s.name);
                           ("wall_s", Json.num s.wall_s);
                         ]
                        @
                        match s.alloc_bytes with
                        | Some b -> [ ("alloc_bytes", Json.num b) ]
                        | None -> []))
                    sections) );
           ]))

let validate_record j =
  match Json.member "schema" j with
  | Some (Json.String s) when s = schema -> (
    match (str_field j "sha", str_field j "mode", num_field j "total_s") with
    | Some _, Some _, Some _ -> (
      match sections_of j with
      | Ok (_ :: _) -> Ok ()
      | Ok [] -> Error "history record has no sections"
      | Error e -> Error e)
    | _ -> Error "history record missing sha/mode/total_s")
  | _ -> Error (Printf.sprintf "history record schema is not %s" schema)

(* ------------------------------------------------------------------ *)
(* JSONL persistence                                                   *)
(* ------------------------------------------------------------------ *)

let append ~path record =
  try
    let dir = Filename.dirname path in
    if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string record);
        output_char oc '\n');
    Ok ()
  with Sys_error e | Unix.Unix_error (_, _, e) -> Error e

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
    in
    let rec parse acc i = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match Json.of_string line with
        | j -> parse (j :: acc) (i + 1) rest
        | exception Failure e ->
          Error (Printf.sprintf "line %d does not parse: %s" i e))
    in
    parse [] 1 lines

(* ------------------------------------------------------------------ *)
(* Regression comparison                                               *)
(* ------------------------------------------------------------------ *)

type comparison = {
  section : string;
  base_wall_s : float;
  wall_s : float;
  change_pct : float;  (* +100.0 = twice as slow *)
}

let default_min_wall_s = 0.01

(* Sections faster than [min_wall_s] in the baseline are skipped: at
   millisecond scale the scheduler noise dwarfs any real regression. *)
let compare_sections ?(min_wall_s = default_min_wall_s) ~baseline ~current () =
  match (sections_of baseline, sections_of current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok base, Ok cur ->
    Ok
      (List.filter_map
         (fun (b : section) ->
           if b.wall_s < min_wall_s then None
           else
             List.find_opt (fun (c : section) -> c.name = b.name) cur
             |> Option.map (fun (c : section) ->
                    {
                      section = b.name;
                      base_wall_s = b.wall_s;
                      wall_s = c.wall_s;
                      change_pct = 100.0 *. ((c.wall_s /. b.wall_s) -. 1.0);
                    }))
         base)

let regressions ~max_regression_pct compared =
  List.filter (fun c -> c.change_pct > max_regression_pct) compared

type alloc_comparison = {
  section : string;
  base_alloc_bytes : float;
  alloc_bytes : float;
  alloc_change_pct : float;  (* +100.0 = twice the allocation *)
}

let default_min_alloc_bytes = 65536.0

(* Sections allocating less than [min_alloc_bytes] in the baseline are
   skipped: a few kB of report plumbing is not a hot path, and tiny
   denominators turn rounding into spurious percentages.  Sections
   without an alloc_bytes field on either side (old history records)
   are skipped too — absence of data is not a regression. *)
let compare_alloc ?(min_alloc_bytes = default_min_alloc_bytes) ~baseline
    ~current () =
  match (sections_of baseline, sections_of current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok base, Ok cur ->
    Ok
      (List.filter_map
         (fun (b : section) ->
           match b.alloc_bytes with
           | Some bb when bb >= min_alloc_bytes -> (
             match List.find_opt (fun (c : section) -> c.name = b.name) cur with
             | Some { alloc_bytes = Some cb; _ } ->
               Some
                 {
                   section = b.name;
                   base_alloc_bytes = bb;
                   alloc_bytes = cb;
                   alloc_change_pct = 100.0 *. ((cb /. bb) -. 1.0);
                 }
             | _ -> None)
           | _ -> None)
         base)

let alloc_regressions ~max_alloc_regression_pct compared =
  List.filter
    (fun c -> c.alloc_change_pct > max_alloc_regression_pct)
    compared

(* ------------------------------------------------------------------ *)
(* Trend table                                                         *)
(* ------------------------------------------------------------------ *)

let short_sha s = if String.length s > 9 then String.sub s 0 9 else s

let pp_table ppf records =
  match records with
  | [] -> Format.fprintf ppf "(no history records)@."
  | _ ->
    (* Column per section of the newest record, rows oldest first. *)
    let newest = List.nth records (List.length records - 1) in
    let columns =
      match sections_of newest with
      | Ok s -> List.map (fun { name; _ } -> name) s
      | Error _ -> []
    in
    Format.fprintf ppf "%-10s %-8s %7s %9s" "sha" "mode" "domains" "total_s";
    List.iter (fun c -> Format.fprintf ppf " %12s" c) columns;
    Format.fprintf ppf "@.";
    List.iter
      (fun r ->
        let sha = Option.value ~default:"?" (str_field r "sha") in
        let mode = Option.value ~default:"?" (str_field r "mode") in
        let domains =
          match num_field r "domains" with
          | Some d -> string_of_int (int_of_float d)
          | None -> "?"
        in
        let total =
          match num_field r "total_s" with
          | Some t -> Printf.sprintf "%9.2f" t
          | None -> "        ?"
        in
        Format.fprintf ppf "%-10s %-8s %7s %s" (short_sha sha) mode domains total;
        let sections = match sections_of r with Ok s -> s | Error _ -> [] in
        List.iter
          (fun c ->
            match List.find_opt (fun s -> s.name = c) sections with
            | Some s -> Format.fprintf ppf " %12.3f" s.wall_s
            | None -> Format.fprintf ppf " %12s" "-")
          columns;
        Format.fprintf ppf "@.")
      records
