(** Bench-history records (schema [ptrng-bench-history/1]) and
    section-wall regression comparison.  Each bench run appends one
    JSONL record to [bench/history.jsonl]; [check_bench --baseline]
    compares two reports; [bench --history-table] prints the trend.
    See docs/PROFILING.md. *)

module Json = Ptrng_telemetry.Json

val schema : string
(** ["ptrng-bench-history/1"]. *)

type section = { name : string; wall_s : float; alloc_bytes : float option }

val sections_of : Json.t -> (section list, string) result
(** The [(name, wall_s, alloc_bytes)] triples of anything with a
    bench-shaped [sections] list — a [ptrng-bench/2] report or a
    history record.  [alloc_bytes] is [None] for records written
    before allocation tracking existed. *)

val record_of_report :
  ?sha:string ->
  ?time_unix:float ->
  ?lint:string ->
  Json.t ->
  (Json.t, string) result
(** Summarize a bench report into one history record ([sha] defaults
    to ["unknown"]).  [lint], when given, is carried verbatim as the
    record's ["lint"] field — the {!Ptrng_analysis.Report.summary_line}
    of the lint run that accompanied the bench (absent otherwise, and
    optional for {!validate_record}). *)

val validate_record : Json.t -> (unit, string) result
(** Check that a document has the history-record shape before it is
    appended or compared. *)

val append : path:string -> Json.t -> (unit, string) result
(** Append one record as a JSONL line, creating the file (and its
    parent directory) if needed. *)

val load : path:string -> (Json.t list, string) result
(** All records of a JSONL history file, oldest first. *)

type comparison = {
  section : string;
  base_wall_s : float;
  wall_s : float;
  change_pct : float;  (** +100.0 = twice as slow. *)
}

val default_min_wall_s : float
(** Sections faster than this (seconds) are skipped by
    {!compare_sections} as timing noise. *)

val compare_sections :
  ?min_wall_s:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (comparison list, string) result
(** Wall-time change of every section present in both documents;
    baseline sections faster than [min_wall_s] (default
    {!default_min_wall_s}) are skipped as noise. *)

val regressions : max_regression_pct:float -> comparison list -> comparison list
(** The comparisons slower than the tolerance. *)

type alloc_comparison = {
  section : string;
  base_alloc_bytes : float;
  alloc_bytes : float;
  alloc_change_pct : float;  (** +100.0 = twice the allocation. *)
}

val default_min_alloc_bytes : float
(** Sections allocating less than this (bytes) in the baseline are
    skipped by {!compare_alloc} as plumbing noise. *)

val compare_alloc :
  ?min_alloc_bytes:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (alloc_comparison list, string) result
(** Allocation change of every section that reports [alloc_bytes] on
    both sides; baseline sections under [min_alloc_bytes] (default
    {!default_min_alloc_bytes}) and sections missing the field on
    either side are skipped. *)

val alloc_regressions :
  max_alloc_regression_pct:float -> alloc_comparison list -> alloc_comparison list
(** The comparisons allocating more than the tolerance allows. *)

val pp_table : Format.formatter -> Json.t list -> unit
(** Trend table, oldest first; columns follow the newest record's
    sections. *)
